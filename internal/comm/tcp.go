package comm

// tcp.go implements TCPTransport: the multi-process backend in which
// each rank is its own OS process and all communication crosses real
// sockets through the length-prefixed binary protocol of wire.go (spec:
// docs/WIRE.md).
//
// Topology. Ranks form a full mesh: one TCP connection per unordered
// rank pair, established during a coordinator-based bootstrap (rank 0
// listens at a well-known address, everyone registers, rank 0 broadcasts
// the address table, higher ranks dial lower ranks). Each connection has
// one writer goroutine draining an unbounded outbound queue — so Send
// never blocks, preserving the buffered-send model the algorithms assume
// — and one reader goroutine that decodes frames and feeds the local
// rank's tag-matched mailbox, so Recv/TryRecv/RecvAny semantics are
// identical to the in-memory backends and the streaming exchange's
// credit window works unchanged.
//
// Generations. Transport.Reset — the hook the engine (comm.Pool) uses
// between sorts — is a wire-level epoch bump: every frame carries the
// sender's generation, receivers drop frames from past generations
// (stale traffic of an aborted run) and buffer frames from future
// generations until their own Reset catches up (SPMD peers may race one
// run ahead). Abort latches propagate as generation-fenced control
// frames carrying enough structure to reconstruct context cancellation
// errors on every process.
//
// Teardown. Close sends a shutdown frame and half-closes each
// connection; an EOF after a shutdown frame is graceful, an EOF without
// one aborts the transport (peer crash). Close waits for the peer's own
// shutdown up to ShutdownTimeout, then force-closes, and is the hook
// behind the goroutine-leak guarantees the tests pin.
//
// Failure survival. A peer's death surfaces as a typed *PeerCrashError
// on every survivor — detected by raw EOF, or by heartbeat silence when
// PeerTimeout is set (a hung process, not just a dead socket). The
// bootstrap listener stays open for the life of the endpoint: a
// respawned worker rejoins the running world through a coordinator
// re-registration and per-peer rejoin handshakes, adopting the world's
// current generation, and Reset (with RejoinWait) waits for the mesh to
// heal so the next run recovers instead of failing. Resize re-forms the
// world at a new size over the same coordinator address.

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrTransportClosed is returned by operations on a TCPTransport after
// Close.
var ErrTransportClosed = errors.New("comm: transport closed")

// TCPOptions configures one process's endpoint of a TCP world. The zero
// value is not usable: Coordinator, Rank and Procs are required (the
// NewTCPLoopback helper fills them for in-process meshes).
type TCPOptions struct {
	// Coordinator is the host:port of the rank-0 rendezvous listener.
	// Rank 0 binds it; every other rank dials it to register and learn
	// the peer address table.
	Coordinator string
	// Rank is this process's rank in [0, Procs).
	Rank int
	// Procs is the total number of ranks in the world.
	Procs int
	// ListenAddr is the bind address for this process's data listener
	// (ranks > 0; rank 0's data listener is the coordinator listener).
	// Default "127.0.0.1:0". Use a routable interface for multi-machine
	// worlds.
	ListenAddr string
	// CoordinatorListener optionally supplies a pre-bound listener for
	// the coordinator address (rank 0 only): the caller can bind
	// host:0, read the ephemeral port off Addr, hand it to workers and
	// pass the listener here, eliminating the bind race of launchers.
	CoordinatorListener net.Listener
	// BootstrapTimeout bounds the whole rendezvous + mesh setup.
	// Default 30s.
	BootstrapTimeout time.Duration
	// ShutdownTimeout bounds how long Close waits for peers to finish
	// their own teardown before force-closing sockets. Default 5s.
	ShutdownTimeout time.Duration
	// PeerTimeout declares a peer crashed when nothing — data or
	// heartbeat — has arrived from it for this long, surfacing a
	// *PeerCrashError instead of hanging until a socket error. Zero
	// disables liveness monitoring (the default): a hung-but-connected
	// peer is then indistinguishable from a slow one. Set it on every
	// rank of the world or none; a monitored rank that does not receive
	// heartbeats back will false-positive during idle periods.
	PeerTimeout time.Duration
	// HeartbeatInterval is the period of outgoing liveness probes.
	// Default PeerTimeout/3 when PeerTimeout is set (so a peer misses
	// ~3 probes before being declared dead), otherwise heartbeats are
	// off.
	HeartbeatInterval time.Duration
	// RejoinWait makes Reset wait up to this long for crashed peers to
	// rejoin the world before poisoning the next run with their
	// *PeerCrashError. Zero keeps the historical fail-fast behavior:
	// a lost peer permanently poisons the endpoint.
	RejoinWait time.Duration
	// Rejoin re-attaches this endpoint to an already-running world in
	// place of a crashed rank (same Rank, same Procs): instead of the
	// full rendezvous it re-registers at the coordinator, adopts the
	// world's current generation and redials every peer. Rank 0 cannot
	// rejoin — it hosts the coordinator.
	Rejoin bool
}

// withDefaults fills unset option fields.
func (o TCPOptions) withDefaults() TCPOptions {
	if o.ListenAddr == "" {
		o.ListenAddr = "127.0.0.1:0"
	}
	if o.BootstrapTimeout == 0 {
		o.BootstrapTimeout = 30 * time.Second
	}
	if o.ShutdownTimeout == 0 {
		o.ShutdownTimeout = 5 * time.Second
	}
	if o.HeartbeatInterval == 0 && o.PeerTimeout > 0 {
		o.HeartbeatInterval = max(o.PeerTimeout/3, time.Millisecond)
	}
	return o
}

// tcpConn is one established rank-pair connection.
type tcpConn struct {
	peer int
	c    net.Conn
	bw   *bufio.Writer

	// dead marks a conn whose peer crashed: its pumps are being torn
	// down and the slot may be replaced by a rejoin. CAS on dead is the
	// per-conn gate that makes crash handling run exactly once.
	dead atomic.Bool
	// lastRecv is the UnixNano timestamp of the last inbound frame
	// (data, control or heartbeat) — the liveness monitor's evidence.
	lastRecv atomic.Int64

	mu       sync.Mutex
	cond     *sync.Cond
	outq     [][]byte // encoded frames awaiting the writer
	closing  bool     // local Close started: writer drains, then half-closes
	peerDone bool     // peer's shutdown frame arrived

	// pending buffers whole frames from future generations (peer raced
	// ahead to its next run); the owning transport re-delivers them
	// when Reset advances the local generation. Guarded by the
	// transport's genMu, not conn.mu.
	pending []pendingFrame
}

// pendingFrame is a future-generation frame awaiting Reset.
type pendingFrame struct {
	h    frameHeader
	msg  Message // valid for frameData
	ctrl []byte  // control payload (abort frames) for non-data kinds
}

// enqueue appends an encoded frame for the writer goroutine.
func (pc *tcpConn) enqueue(frame []byte) {
	pc.mu.Lock()
	pc.outq = append(pc.outq, frame)
	pc.cond.Signal()
	pc.mu.Unlock()
}

// TCPTransport is one process's endpoint of a multi-process world: the
// third Transport backend, in which every rank runs in its own OS
// process and messages cross real TCP sockets (docs/WIRE.md).
//
// A TCPTransport hosts exactly one local rank. Send accepts only the
// local rank as src and Recv/TryRecv/Barrier only the local rank as
// dst/rank — World and Pool detect this through the RankHoster
// interface and drive just the hosted rank, so the same SPMD code runs
// unchanged with p processes instead of p goroutines. For an in-process
// world over real sockets (tests, single-machine benchmarks), see
// NewTCPLoopback.
//
// Unlike SimTransport's modeled byte accounting, Counters here report
// measured wire traffic: every frame charges its actual encoded size,
// header included.
type TCPTransport struct {
	p    int
	me   int
	opts TCPOptions

	// conns holds the connection per peer rank (nil at me). Slots are
	// atomic pointers because a rejoin replaces a dead peer's conn
	// while Send and the monitor read concurrently.
	conns []atomic.Pointer[tcpConn]
	box   mailbox // the local rank's tag-matched inbox

	// ln is the bootstrap listener, kept open for the life of the
	// endpoint (acceptLoop serves rejoin handshakes on it). lnKeep
	// marks a listener detached for reuse (Resize): teardown then
	// leaves it open for the successor endpoint.
	ln     net.Listener
	lnKeep atomic.Bool

	// table is the live rank → data-address map (rank 0 only):
	// rendezvous fills it, rejoins update it, so a respawned worker can
	// always learn the current mesh.
	tableMu sync.Mutex
	table   []string

	counters struct {
		mu sync.Mutex
		c  Counters
	}

	gen    atomic.Uint32 // current generation (epoch)
	genMu  sync.Mutex    // serializes Reset vs reader delivery decisions
	abort  abortState
	bar    tcpBarrier
	closed atomic.Bool

	// lostRanks records crashed peers (by rank) that have not rejoined,
	// each mapped to its *PeerCrashError. Unlike the abort latch —
	// which Reset clears so an engine can reuse the mesh after a
	// cancellation — a dead peer stays recorded: Reset either waits for
	// a rejoin to clear the entry (RejoinWait > 0) or re-poisons the
	// next run so it fails fast instead of wedging against a dead
	// socket until the watchdog.
	lostMu    sync.Mutex
	lostRanks map[int]error

	// hbSuspend pauses outgoing heartbeats (test hook: a suspended
	// endpoint looks hung to its peers without closing any socket).
	hbSuspend atomic.Bool

	stop chan struct{}  // closed on Close/Kill: stops monitor
	wg   sync.WaitGroup // reader/writer pumps, acceptLoop, monitor
}

var (
	_ Transport  = (*TCPTransport)(nil)
	_ RankHoster = (*TCPTransport)(nil)
	_ io.Closer  = (*TCPTransport)(nil)
)

// tcpBarrier is the transport's native barrier, centralized at rank 0:
// each rank sends a barrier-enter control frame to rank 0, which counts
// p arrivals per sequence number and broadcasts a release frame. The
// sequence number travels in the frame's tag field.
type tcpBarrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	seq      uint32         // barriers this rank has entered (this generation)
	released uint32         // highest released sequence number
	enters   map[uint32]int // rank 0 only: arrivals per sequence
}

// DialTCP bootstraps this process's endpoint of a TCP world and blocks
// until the full connection mesh is up: the coordinator has seen all
// Procs registrations, this rank has dialed every lower rank and been
// dialed by every higher rank. The bootstrap listener stays open for
// the life of the endpoint, serving rejoin handshakes from respawned
// peers. With Rejoin set, the endpoint instead re-attaches to an
// already-running world in place of a crashed rank. Every setup failure
// is returned as a *BootstrapError.
func DialTCP(opts TCPOptions) (*TCPTransport, error) {
	opts = opts.withDefaults()
	if opts.Procs < 1 {
		panicSize(opts.Procs)
	}
	if opts.Rank < 0 || opts.Rank >= opts.Procs {
		return nil, &BootstrapError{Rank: opts.Rank, Err: fmt.Errorf("rank outside [0, %d)", opts.Procs)}
	}
	if opts.Coordinator == "" && opts.CoordinatorListener == nil {
		return nil, &BootstrapError{Rank: opts.Rank, Err: errors.New("bootstrap needs a coordinator address")}
	}
	t := &TCPTransport{p: opts.Procs, me: opts.Rank, opts: opts}
	t.box.cond = sync.NewCond(&t.box.mu)
	t.bar.cond = sync.NewCond(&t.bar.mu)
	t.bar.enters = make(map[uint32]int)
	t.conns = make([]atomic.Pointer[tcpConn], opts.Procs)
	t.lostRanks = make(map[int]error)
	t.stop = make(chan struct{})
	t.gen.Store(1) // generation 0 is never used: frames always carry ≥ 1
	var err error
	if opts.Rejoin {
		err = t.rejoin()
	} else {
		err = t.bootstrap()
	}
	if err != nil {
		t.closed.Store(true)
		t.forceClose()
		return nil, &BootstrapError{Rank: opts.Rank, Err: err}
	}
	// The mesh is up: the listener's bootstrap deadline comes off and
	// it keeps accepting for the life of the endpoint (rejoins).
	if tl, ok := t.ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Time{})
	}
	now := time.Now().UnixNano()
	// Start the per-peer pumps only once the whole mesh exists.
	for r := range t.conns {
		pc := t.conns[r].Load()
		if pc == nil {
			continue
		}
		pc.lastRecv.Store(now)
		t.wg.Add(2)
		go t.readLoop(pc)
		go t.writeLoop(pc)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	if t.opts.HeartbeatInterval > 0 {
		t.wg.Add(1)
		go t.monitor()
	}
	return t, nil
}

// LocalRanks reports the single rank this process hosts (RankHoster).
func (t *TCPTransport) LocalRanks() []int { return []int{t.me} }

// Size returns the total number of ranks in the world.
func (t *TCPTransport) Size() int { return t.p }

// Rank returns the local rank this endpoint hosts.
func (t *TCPTransport) Rank() int { return t.me }

// ---------------------------------------------------------------------
// Bootstrap
// ---------------------------------------------------------------------

// bootMsg is the JSON control message of the bootstrap phase (wire
// protocol spec: docs/WIRE.md §Bootstrap). Every message is prefixed
// with a uint32 length.
type bootMsg struct {
	// Proto pins the wire-protocol version: "hsswire/<N>".
	Proto string `json:"proto"`
	// Type is "register", "table", "data", "ok", "rejoin",
	// "rejoin-data" or "error".
	Type string `json:"type"`
	// Rank, Procs, Addr describe the registering worker.
	Rank  int    `json:"rank,omitempty"`
	Procs int    `json:"procs,omitempty"`
	Addr  string `json:"addr,omitempty"`
	// Src and Dst identify a data connection's rank pair.
	Src int `json:"src,omitempty"`
	Dst int `json:"dst,omitempty"`
	// Addrs is the full rank → address table ("table" messages).
	Addrs []string `json:"addrs,omitempty"`
	// Gen is the world's current generation, carried on the table reply
	// of a rejoin so the joiner re-enters the epoch lockstep.
	Gen uint32 `json:"gen,omitempty"`
	// Err carries a bootstrap failure ("error" messages).
	Err string `json:"err,omitempty"`
}

// protoID is the version string every bootstrap message must carry.
var protoID = fmt.Sprintf("hsswire/%d", wireProtoVersion)

// writeBootMsg sends one length-prefixed JSON bootstrap message.
func writeBootMsg(c net.Conn, m bootMsg) error {
	m.Proto = protoID
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(b)))
	if _, err := c.Write(lenb[:]); err != nil {
		return err
	}
	_, err = c.Write(b)
	return err
}

// readBootMsg reads one length-prefixed JSON bootstrap message and
// validates its protocol version.
func readBootMsg(c net.Conn) (bootMsg, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(c, lenb[:]); err != nil {
		return bootMsg{}, err
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n > 1<<20 {
		return bootMsg{}, fmt.Errorf("comm: bootstrap message of %d bytes (corrupt or wrong peer)", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(c, b); err != nil {
		return bootMsg{}, err
	}
	var m bootMsg
	if err := json.Unmarshal(b, &m); err != nil {
		return bootMsg{}, fmt.Errorf("comm: bootstrap message: %w", err)
	}
	if m.Proto != protoID {
		return bootMsg{}, &VersionMismatchError{Local: protoID, Peer: m.Proto}
	}
	if m.Type == "error" {
		return bootMsg{}, fmt.Errorf("comm: bootstrap rejected: %s", m.Err)
	}
	return m, nil
}

// bootstrap performs rendezvous and mesh construction for this rank.
func (t *TCPTransport) bootstrap() error {
	deadline := time.Now().Add(t.opts.BootstrapTimeout)

	// Bind the listener: the coordinator address for rank 0 (unless a
	// pre-bound listener was supplied), an ephemeral data port for the
	// rest.
	var ln net.Listener
	var err error
	if t.me == 0 {
		ln = t.opts.CoordinatorListener
		if ln == nil {
			ln, err = net.Listen("tcp", t.opts.Coordinator)
			if err != nil {
				return fmt.Errorf("comm: tcp coordinator listen %s: %w", t.opts.Coordinator, err)
			}
		}
	} else {
		ln, err = net.Listen("tcp", t.opts.ListenAddr)
		if err != nil {
			return fmt.Errorf("comm: tcp listen %s: %w", t.opts.ListenAddr, err)
		}
	}
	// The listener outlives bootstrap: rejoin handshakes arrive on it
	// for the life of the endpoint. Close/forceClose release it.
	t.ln = ln
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}

	table, pre, err := t.rendezvous(ln, deadline)
	if err != nil {
		return err
	}
	return t.buildMesh(ln, table, pre, deadline)
}

// rendezvous learns the full rank → address table. Rank 0 serves
// registrations on ln and broadcasts the table; other ranks register at
// the coordinator and receive it. Data connections that arrive at the
// listener while rendezvous is still in progress (fast peers) are
// returned in pre for buildMesh to adopt.
func (t *TCPTransport) rendezvous(ln net.Listener, deadline time.Time) (table []string, pre []*tcpConn, err error) {
	if t.me == 0 {
		table = make([]string, t.p)
		table[0] = ln.Addr().String()
		regConns := make([]net.Conn, t.p) // open registration conns by rank
		registered := 1                   // rank 0 is implicitly present
		defer func() {
			for _, c := range regConns {
				if c != nil {
					c.Close()
				}
			}
		}()
		for registered < t.p {
			c, aerr := ln.Accept()
			if aerr != nil {
				return nil, nil, fmt.Errorf("comm: tcp rendezvous accept (have %d/%d ranks): %w", registered, t.p, aerr)
			}
			c.SetDeadline(deadline)
			m, merr := readBootMsg(c)
			if merr != nil {
				c.Close()
				return nil, nil, merr
			}
			switch m.Type {
			case "register":
				if m.Procs != t.p {
					writeBootMsg(c, bootMsg{Type: "error", Err: fmt.Sprintf("world size mismatch: coordinator has %d ranks, worker expects %d", t.p, m.Procs)})
					c.Close()
					return nil, nil, fmt.Errorf("comm: tcp rendezvous: rank %d expects %d procs, world has %d", m.Rank, m.Procs, t.p)
				}
				if m.Rank < 1 || m.Rank >= t.p || regConns[m.Rank] != nil {
					writeBootMsg(c, bootMsg{Type: "error", Err: fmt.Sprintf("invalid or duplicate rank %d", m.Rank)})
					c.Close()
					return nil, nil, fmt.Errorf("comm: tcp rendezvous: invalid or duplicate rank %d", m.Rank)
				}
				regConns[m.Rank] = c
				table[m.Rank] = m.Addr
				registered++
			case "data":
				// A peer that already finished rendezvous is dialing our
				// data port; adopt the connection for buildMesh.
				pc, derr := t.acceptData(c, m)
				if derr != nil {
					return nil, nil, derr
				}
				pre = append(pre, pc)
			default:
				c.Close()
				return nil, nil, fmt.Errorf("comm: tcp rendezvous: unexpected %q message", m.Type)
			}
		}
		for r := 1; r < t.p; r++ {
			if err := writeBootMsg(regConns[r], bootMsg{Type: "table", Procs: t.p, Addrs: table}); err != nil {
				return nil, nil, fmt.Errorf("comm: tcp rendezvous: sending table to rank %d: %w", r, err)
			}
			regConns[r].Close()
			regConns[r] = nil
		}
		// Keep the table live: a crashed worker's respawn asks for the
		// current mesh here long after rendezvous is over.
		t.tableMu.Lock()
		t.table = table
		t.tableMu.Unlock()
		return table, pre, nil
	}

	// Ranks > 0: register, then wait for the table. The coordinator may
	// not be up yet (workers often launch before or alongside rank 0),
	// so failed dials retry with jittered exponential backoff until the
	// bootstrap deadline.
	c, retries, err := dialRetry(t.opts.Coordinator, t.me, deadline)
	if err != nil {
		return nil, nil, fmt.Errorf("comm: tcp rank %d dialing coordinator %s: %w", t.me, t.opts.Coordinator, err)
	}
	t.counters.mu.Lock()
	t.counters.c.Reconnects += retries
	t.counters.mu.Unlock()
	defer c.Close()
	c.SetDeadline(deadline)
	if err := writeBootMsg(c, bootMsg{Type: "register", Rank: t.me, Procs: t.p, Addr: ln.Addr().String()}); err != nil {
		return nil, nil, fmt.Errorf("comm: tcp rank %d registering: %w", t.me, err)
	}
	m, err := readBootMsg(c)
	if err != nil {
		return nil, nil, fmt.Errorf("comm: tcp rank %d awaiting address table: %w", t.me, err)
	}
	if m.Type != "table" || len(m.Addrs) != t.p {
		return nil, nil, fmt.Errorf("comm: tcp rank %d: malformed address table (%q, %d addrs)", t.me, m.Type, len(m.Addrs))
	}
	return m.Addrs, nil, nil
}

// acceptData validates an inbound data handshake and wires the conn.
func (t *TCPTransport) acceptData(c net.Conn, m bootMsg) (*tcpConn, error) {
	if m.Dst != t.me || m.Src <= t.me || m.Src >= t.p {
		writeBootMsg(c, bootMsg{Type: "error", Err: fmt.Sprintf("bad data pair (%d,%d) at rank %d", m.Src, m.Dst, t.me)})
		c.Close()
		return nil, fmt.Errorf("comm: tcp rank %d: bad data handshake pair (%d,%d)", t.me, m.Src, m.Dst)
	}
	if err := writeBootMsg(c, bootMsg{Type: "ok"}); err != nil {
		c.Close()
		return nil, fmt.Errorf("comm: tcp rank %d: acking data conn from %d: %w", t.me, m.Src, err)
	}
	return newTCPConn(m.Src, c), nil
}

// newTCPConn wraps an established socket.
func newTCPConn(peer int, c net.Conn) *tcpConn {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	pc := &tcpConn{peer: peer, c: c, bw: bufio.NewWriterSize(c, 1<<16)}
	pc.cond = sync.NewCond(&pc.mu)
	return pc
}

// buildMesh completes the full mesh: dial every lower rank, accept every
// higher rank (pre holds early arrivals already accepted during
// rendezvous).
func (t *TCPTransport) buildMesh(ln net.Listener, table []string, pre []*tcpConn, deadline time.Time) error {
	for _, pc := range pre {
		t.conns[pc.peer].Store(pc)
	}

	// Dial lower ranks concurrently.
	var wg sync.WaitGroup
	dialErr := make([]error, t.me)
	for j := 0; j < t.me; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			d := net.Dialer{Deadline: deadline}
			c, err := d.Dial("tcp", table[j])
			if err != nil {
				dialErr[j] = fmt.Errorf("comm: tcp rank %d dialing rank %d at %s: %w", t.me, j, table[j], err)
				return
			}
			c.SetDeadline(deadline)
			if err := writeBootMsg(c, bootMsg{Type: "data", Src: t.me, Dst: j}); err != nil {
				c.Close()
				dialErr[j] = fmt.Errorf("comm: tcp rank %d data handshake to rank %d: %w", t.me, j, err)
				return
			}
			if _, err := readBootMsg(c); err != nil {
				c.Close()
				dialErr[j] = fmt.Errorf("comm: tcp rank %d data ack from rank %d: %w", t.me, j, err)
				return
			}
			c.SetDeadline(time.Time{}) // the mesh conn lives unbounded
			t.conns[j].Store(newTCPConn(j, c))
		}(j)
	}

	// Accept the remaining higher ranks.
	var acceptErr error
	for {
		missing := 0
		for r := t.me + 1; r < t.p; r++ {
			if t.conns[r].Load() == nil {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		c, err := ln.Accept()
		if err != nil {
			acceptErr = fmt.Errorf("comm: tcp rank %d accepting mesh conns (%d missing): %w", t.me, missing, err)
			break
		}
		c.SetDeadline(deadline)
		m, err := readBootMsg(c)
		if err != nil {
			acceptErr = err
			c.Close()
			break
		}
		if m.Type != "data" {
			writeBootMsg(c, bootMsg{Type: "error", Err: "mesh is being built; rendezvous is over"})
			c.Close()
			acceptErr = fmt.Errorf("comm: tcp rank %d: unexpected %q during mesh build", t.me, m.Type)
			break
		}
		pc, err := t.acceptData(c, m)
		if err != nil {
			acceptErr = err
			break
		}
		if t.conns[pc.peer].Load() != nil {
			pc.c.Close()
			acceptErr = fmt.Errorf("comm: tcp rank %d: duplicate mesh conn from rank %d", t.me, pc.peer)
			break
		}
		t.conns[pc.peer].Store(pc)
	}
	wg.Wait()
	for _, err := range dialErr {
		if err != nil {
			return err
		}
	}
	if acceptErr != nil {
		return acceptErr
	}
	for r := t.me + 1; r < t.p; r++ {
		t.conns[r].Load().c.SetDeadline(time.Time{})
	}
	return nil
}

// ---------------------------------------------------------------------
// Rejoin (crash recovery)
// ---------------------------------------------------------------------

// rejoin re-attaches this endpoint to a running world in place of a
// crashed rank: bind a fresh data listener, re-register at the
// coordinator ("rejoin"), adopt the world's current address table and
// generation, then dial every peer with a "rejoin-data" handshake.
// Peers swap the dead conn for the new one and clear the rank's crash
// record, healing the mesh without restarting the world.
func (t *TCPTransport) rejoin() error {
	if t.me == 0 {
		return errors.New("rank 0 hosts the coordinator and cannot rejoin; restart the world")
	}
	deadline := time.Now().Add(t.opts.BootstrapTimeout)
	ln, err := net.Listen("tcp", t.opts.ListenAddr)
	if err != nil {
		return fmt.Errorf("comm: tcp listen %s: %w", t.opts.ListenAddr, err)
	}
	t.ln = ln
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}

	c, retries, err := dialRetry(t.opts.Coordinator, t.me, deadline)
	if err != nil {
		return fmt.Errorf("comm: tcp rank %d dialing coordinator %s for rejoin: %w", t.me, t.opts.Coordinator, err)
	}
	defer c.Close()
	c.SetDeadline(deadline)
	if err := writeBootMsg(c, bootMsg{Type: "rejoin", Rank: t.me, Procs: t.p, Addr: ln.Addr().String()}); err != nil {
		return fmt.Errorf("comm: tcp rank %d rejoin registration: %w", t.me, err)
	}
	m, err := readBootMsg(c)
	if err != nil {
		return fmt.Errorf("comm: tcp rank %d awaiting rejoin table: %w", t.me, err)
	}
	if m.Type != "table" || len(m.Addrs) != t.p || m.Gen == 0 {
		return fmt.Errorf("comm: tcp rank %d: malformed rejoin table (%q, %d addrs, gen %d)", t.me, m.Type, len(m.Addrs), m.Gen)
	}
	// Adopt the world's epoch: survivors are parked at m.Gen (their
	// Reset waits for this rejoin before bumping), so the lockstep
	// resumes as if this process had been there all along.
	t.gen.Store(m.Gen)

	// Dial every peer — a joiner re-establishes both directions itself,
	// unlike the bootstrap's higher-dials-lower convention.
	var wg sync.WaitGroup
	dialErr := make([]error, t.p)
	dialRetries := make([]int64, t.p)
	for j := 0; j < t.p; j++ {
		if j == t.me {
			continue
		}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			c, r, err := dialRetry(m.Addrs[j], t.me, deadline)
			dialRetries[j] = r
			if err != nil {
				dialErr[j] = fmt.Errorf("comm: tcp rank %d redialing rank %d at %s: %w", t.me, j, m.Addrs[j], err)
				return
			}
			c.SetDeadline(deadline)
			if err := writeBootMsg(c, bootMsg{Type: "rejoin-data", Src: t.me, Dst: j}); err != nil {
				c.Close()
				dialErr[j] = fmt.Errorf("comm: tcp rank %d rejoin handshake to rank %d: %w", t.me, j, err)
				return
			}
			if _, err := readBootMsg(c); err != nil {
				c.Close()
				dialErr[j] = fmt.Errorf("comm: tcp rank %d rejoin ack from rank %d: %w", t.me, j, err)
				return
			}
			c.SetDeadline(time.Time{})
			t.conns[j].Store(newTCPConn(j, c))
		}(j)
	}
	wg.Wait()
	var total int64
	for _, r := range dialRetries {
		total += r
	}
	t.counters.mu.Lock()
	t.counters.c.Reconnects += retries + total
	t.counters.c.Respawns = 1
	t.counters.mu.Unlock()
	return errors.Join(dialErr...)
}

// acceptLoop serves the endpoint's listener after bootstrap: rejoin
// registrations (rank 0) and rejoin data handshakes (every rank). It
// exits when the listener closes (Close/Kill) or is detached (Resize).
func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			// Closed, detached for reuse, or broken — in every case the
			// endpoint stops accepting.
			return
		}
		t.handleLateConn(c)
	}
}

// handleLateConn performs one post-bootstrap handshake. Handshakes are
// served serially — a rejoin is rare and cheap — with a deadline so a
// stuck dialer cannot wedge the loop.
func (t *TCPTransport) handleLateConn(c net.Conn) {
	c.SetDeadline(time.Now().Add(t.opts.BootstrapTimeout))
	m, err := readBootMsg(c)
	if err != nil {
		c.Close()
		return
	}
	switch m.Type {
	case "rejoin":
		if t.me != 0 {
			writeBootMsg(c, bootMsg{Type: "error", Err: "rejoin must go to the coordinator (rank 0)"})
			c.Close()
			return
		}
		if m.Procs != t.p || m.Rank < 1 || m.Rank >= t.p {
			writeBootMsg(c, bootMsg{Type: "error", Err: fmt.Sprintf("invalid rejoin rank %d/procs %d (world has %d)", m.Rank, m.Procs, t.p)})
			c.Close()
			return
		}
		t.tableMu.Lock()
		t.table[m.Rank] = m.Addr
		tbl := append([]string(nil), t.table...)
		t.tableMu.Unlock()
		writeBootMsg(c, bootMsg{Type: "table", Procs: t.p, Addrs: tbl, Gen: t.gen.Load()})
		c.Close()
	case "rejoin-data":
		if m.Dst != t.me || m.Src == t.me || m.Src < 0 || m.Src >= t.p {
			writeBootMsg(c, bootMsg{Type: "error", Err: fmt.Sprintf("bad rejoin pair (%d,%d) at rank %d", m.Src, m.Dst, t.me)})
			c.Close()
			return
		}
		if err := writeBootMsg(c, bootMsg{Type: "ok"}); err != nil {
			c.Close()
			return
		}
		c.SetDeadline(time.Time{})
		t.adoptRejoin(m.Src, c)
	default:
		writeBootMsg(c, bootMsg{Type: "error", Err: "world already bootstrapped"})
		c.Close()
	}
}

// adoptRejoin swaps a respawned peer's fresh connection into the mesh
// and clears the rank's crash record, so the next Reset can proceed
// instead of poisoning the run.
func (t *TCPTransport) adoptRejoin(peer int, c net.Conn) {
	if t.closed.Load() {
		c.Close()
		return
	}
	pc := newTCPConn(peer, c)
	pc.lastRecv.Store(time.Now().UnixNano())
	if old := t.conns[peer].Load(); old != nil {
		// Usually already dead (that is why the peer respawned); if the
		// crash went unnoticed here, retire the old conn now.
		t.killConn(old)
	}
	t.conns[peer].Store(pc)
	t.wg.Add(2)
	go t.readLoop(pc)
	go t.writeLoop(pc)
	t.lostMu.Lock()
	delete(t.lostRanks, peer)
	t.lostMu.Unlock()
	t.counters.mu.Lock()
	t.counters.c.Respawns++
	t.counters.mu.Unlock()
}

// ---------------------------------------------------------------------
// Liveness (heartbeats)
// ---------------------------------------------------------------------

// monitor emits heartbeat frames on every live connection each
// HeartbeatInterval and — when PeerTimeout is set — declares peers that
// have been silent past the timeout crashed. Heartbeats make a *hung*
// process (deadlocked, stopped, partitioned) detectable; a merely slow
// peer keeps its connection alive at zero protocol cost because
// heartbeats never enter the mailbox.
func (t *TCPTransport) monitor() {
	defer t.wg.Done()
	tick := time.NewTicker(t.opts.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
		}
		if t.hbSuspend.Load() {
			continue
		}
		now := time.Now()
		gen := t.gen.Load()
		for r := range t.conns {
			pc := t.conns[r].Load()
			if pc == nil || pc.dead.Load() {
				continue
			}
			pc.mu.Lock()
			quiet := pc.peerDone || pc.closing
			pc.mu.Unlock()
			if quiet {
				continue
			}
			if pt := t.opts.PeerTimeout; pt > 0 {
				silent := now.Sub(time.Unix(0, pc.lastRecv.Load()))
				if silent > pt {
					t.peerLost(pc, fmt.Errorf("no traffic for %v (peer timeout %v)", silent.Round(time.Millisecond), pt))
					continue
				}
			}
			frame := make([]byte, frameHeaderLen)
			putFrameHeader(frame, frameHeader{
				kind: frameHeartbeat,
				src:  uint32(t.me),
				dst:  uint32(pc.peer),
				gen:  gen,
			})
			pc.enqueue(frame)
		}
	}
}

// SuspendHeartbeats pauses (or resumes) this endpoint's outgoing
// heartbeats without touching any socket — to an idle peer the process
// looks hung, exactly like a deadlocked rank. Test hook for the
// liveness monitor.
func (t *TCPTransport) SuspendHeartbeats(suspend bool) {
	t.hbSuspend.Store(suspend)
}

// ---------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------

// Send encodes the payload into a data frame and hands it to the
// destination's connection writer (or loops it back through the codec
// for a self-send). It never blocks on the network. src must be the
// locally hosted rank.
func (t *TCPTransport) Send(src, dst int, tag Tag, payload any, bytes int64) error {
	if err := t.abort.get(); err != nil {
		return err
	}
	if t.closed.Load() {
		return ErrTransportClosed
	}
	if src != t.me {
		return fmt.Errorf("comm: tcp endpoint hosts rank %d, cannot send as rank %d", t.me, src)
	}
	gen := t.gen.Load()
	frame := make([]byte, frameHeaderLen, frameHeaderLen+wirePayloadSize(payload))
	frame, err := appendWirePayload(frame, payload)
	if err != nil {
		return fmt.Errorf("comm: tcp send to rank %d tag %d: %w", dst, tag, err)
	}
	putFrameHeader(frame, frameHeader{
		kind: frameData,
		src:  uint32(src),
		dst:  uint32(dst),
		tag:  uint32(tag),
		gen:  gen,
		len:  uint64(len(frame) - frameHeaderLen),
	})
	t.counters.mu.Lock()
	t.counters.c.MsgsSent++
	t.counters.c.BytesSent += int64(len(frame))
	t.counters.mu.Unlock()
	if dst == t.me {
		// Self-send: park the encoded bytes like remote traffic —
		// uniform copy semantics and one decode path at consumption.
		raw := make(rawWire, len(frame)-frameHeaderLen)
		copy(raw, frame[frameHeaderLen:])
		t.deliver(Message{Src: src, Tag: tag, Payload: raw, Bytes: int64(len(frame))})
		return nil
	}
	pc := t.conns[dst].Load()
	if pc == nil || pc.dead.Load() {
		// The peer crashed between the abort check above and here (or
		// has not rejoined yet); surface the crash rather than queueing
		// into the void.
		if err := t.abort.get(); err != nil {
			return err
		}
		return &PeerCrashError{Rank: dst}
	}
	pc.enqueue(frame)
	return nil
}

// rawWire is an undecoded data payload parked in the mailbox. Frames
// decode at consumption time, not on the reader goroutine: a frame can
// arrive before the receiving rank reaches the protocol step that
// registers its payload type (readers run arbitrarily far ahead of the
// rank), whereas by the time a Recv matches the frame, the matching
// protocol function has executed its RegisterWire.
type rawWire []byte

// decodeParked decodes a parked payload in place; in-memory transports
// never produce rawWire, so this is tcp-only.
func decodeParked(m *Message) error {
	raw, ok := m.Payload.(rawWire)
	if !ok {
		return nil
	}
	p, err := decodeWirePayload(raw)
	if err != nil {
		return err
	}
	m.Payload = p
	return nil
}

// deliver appends a message to the local mailbox and wakes receivers.
func (t *TCPTransport) deliver(m Message) {
	t.box.mu.Lock()
	t.box.queue = append(t.box.queue, m)
	t.box.cond.Broadcast()
	t.box.mu.Unlock()
}

// Recv blocks until a message matching (src, tag) is in the local
// mailbox. dst must be the locally hosted rank.
func (t *TCPTransport) Recv(dst, src int, tag Tag) (Message, error) {
	if dst != t.me {
		return Message{}, fmt.Errorf("comm: tcp endpoint hosts rank %d, cannot receive as rank %d", t.me, dst)
	}
	b := &t.box
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.queue {
			if (src == AnySource || m.Src == src) && m.Tag == tag {
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				if err := decodeParked(&m); err != nil {
					return Message{}, fmt.Errorf("comm: tcp recv from rank %d tag %d: %w", m.Src, tag, err)
				}
				t.chargeRecv(m)
				return m, nil
			}
		}
		if err := t.abort.get(); err != nil {
			return Message{}, err
		}
		if t.closed.Load() {
			return Message{}, ErrTransportClosed
		}
		b.cond.Wait()
	}
}

// TryRecv returns a matching buffered message without blocking.
func (t *TCPTransport) TryRecv(dst, src int, tag Tag) (Message, bool, error) {
	if dst != t.me {
		return Message{}, false, fmt.Errorf("comm: tcp endpoint hosts rank %d, cannot receive as rank %d", t.me, dst)
	}
	b := &t.box
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := t.abort.get(); err != nil {
		return Message{}, false, err
	}
	for i, m := range b.queue {
		if (src == AnySource || m.Src == src) && m.Tag == tag {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			if err := decodeParked(&m); err != nil {
				return Message{}, false, fmt.Errorf("comm: tcp recv from rank %d tag %d: %w", m.Src, tag, err)
			}
			t.chargeRecv(m)
			return m, true, nil
		}
	}
	return Message{}, false, nil
}

// chargeRecv accounts one consumed message. Callers hold box.mu.
func (t *TCPTransport) chargeRecv(m Message) {
	t.counters.mu.Lock()
	t.counters.c.MsgsRecv++
	t.counters.c.BytesRecv += m.Bytes
	t.counters.mu.Unlock()
}

// writeLoop drains one connection's outbound queue, flushing whenever
// the queue runs dry. On Close it writes the remaining frames and
// half-closes the socket so the peer sees a clean EOF after the
// shutdown frame.
func (t *TCPTransport) writeLoop(pc *tcpConn) {
	defer t.wg.Done()
	for {
		pc.mu.Lock()
		for len(pc.outq) == 0 && !pc.closing {
			pc.cond.Wait()
		}
		batch := pc.outq
		pc.outq = nil
		closing := pc.closing
		pc.mu.Unlock()
		for _, frame := range batch {
			if _, err := pc.bw.Write(frame); err != nil {
				t.writeFailed(pc, err)
				return
			}
		}
		if err := pc.bw.Flush(); err != nil {
			t.writeFailed(pc, err)
			return
		}
		if closing {
			pc.mu.Lock()
			done := len(pc.outq) == 0
			pc.mu.Unlock()
			if done {
				if tc, ok := pc.c.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
				return
			}
		}
	}
}

// writeFailed handles a broken outbound socket: during teardown it is
// expected; otherwise the peer is gone and the world must not hang.
func (t *TCPTransport) writeFailed(pc *tcpConn, err error) {
	if t.closed.Load() {
		return
	}
	t.peerLost(pc, err)
}

// peerLost handles a crashed peer, exactly once per conn: retire the
// connection (so its pumps exit and the slot can be replaced by a
// rejoin), record the crash in lostRanks, and abort the world with a
// *PeerCrashError every rank can act on.
func (t *TCPTransport) peerLost(pc *tcpConn, err error) {
	if !t.killConn(pc) {
		return
	}
	crash := &PeerCrashError{Rank: pc.peer, Err: fmt.Errorf("rank %d lost contact: %w", t.me, err)}
	t.lostMu.Lock()
	if _, seen := t.lostRanks[pc.peer]; !seen {
		t.lostRanks[pc.peer] = crash
	}
	t.lostMu.Unlock()
	t.Abort(crash)
}

// killConn retires a connection: closes the socket (kicking the reader
// out of its blocking read) and wakes the writer so both pumps exit.
// Returns false if the conn was already retired.
func (t *TCPTransport) killConn(pc *tcpConn) bool {
	if !pc.dead.CompareAndSwap(false, true) {
		return false
	}
	pc.c.Close()
	pc.mu.Lock()
	pc.closing = true
	pc.cond.Broadcast()
	pc.mu.Unlock()
	return true
}

// readLoop decodes frames from one peer and dispatches them under the
// generation fence.
func (t *TCPTransport) readLoop(pc *tcpConn) {
	defer t.wg.Done()
	br := bufio.NewReaderSize(pc.c, 1<<16)
	var hdr [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			t.readEnded(pc, err)
			return
		}
		h := parseFrameHeader(hdr[:])
		if h.len > 1<<40 {
			t.readEnded(pc, fmt.Errorf("frame of %d bytes (corrupt stream)", h.len))
			return
		}
		payload := make([]byte, h.len)
		if _, err := io.ReadFull(br, payload); err != nil {
			t.readEnded(pc, err)
			return
		}
		pc.lastRecv.Store(time.Now().UnixNano())
		if h.kind == frameHeartbeat {
			// Liveness probes prove the process is alive; they carry no
			// run state and are exempt from the generation fence.
			continue
		}
		if h.kind == frameShutdown {
			pc.mu.Lock()
			pc.peerDone = true
			pc.mu.Unlock()
			continue
		}
		if err := t.dispatchFrame(pc, h, payload); err != nil {
			t.readEnded(pc, err)
			return
		}
	}
}

// readEnded classifies the end of an inbound stream: EOF after the
// peer's shutdown frame (or during our own Close) is graceful teardown,
// anything else aborts the world.
func (t *TCPTransport) readEnded(pc *tcpConn, err error) {
	pc.mu.Lock()
	peerDone := pc.peerDone
	pc.mu.Unlock()
	if peerDone || t.closed.Load() {
		return
	}
	t.peerLost(pc, err)
}

// dispatchFrame routes one inbound frame under the generation fence:
// current-generation frames are delivered, past generations dropped
// (stale traffic of a finished or aborted run), future generations
// buffered until the local Reset catches up.
func (t *TCPTransport) dispatchFrame(pc *tcpConn, h frameHeader, payload []byte) error {
	if int(h.src) != pc.peer || int(h.dst) != t.me {
		return fmt.Errorf("frame claims pair (%d,%d) on the (%d,%d) connection", h.src, h.dst, pc.peer, t.me)
	}
	var m Message
	if h.kind == frameData {
		m = Message{Src: int(h.src), Tag: Tag(h.tag), Payload: rawWire(payload), Bytes: int64(frameHeaderLen) + int64(h.len)}
	}
	// The fence decision and the frame's effect happen under one lock:
	// otherwise a Reset could slip between them and a stale frame would
	// land in the new generation's clean mailbox.
	t.genMu.Lock()
	defer t.genMu.Unlock()
	cur := t.gen.Load()
	switch {
	case h.gen == cur:
		t.applyFrame(h, m, payload)
	case h.gen > cur:
		pf := pendingFrame{h: h, msg: m}
		if h.kind != frameData {
			pf.ctrl = payload // an abort's JSON body must survive the wait
		}
		pc.pending = append(pc.pending, pf)
	default:
		// Stale generation: traffic of a finished or aborted run; drop.
	}
	return nil
}

// applyFrame performs a current-generation frame's effect.
func (t *TCPTransport) applyFrame(h frameHeader, m Message, payload []byte) {
	switch h.kind {
	case frameData:
		t.deliver(m)
	case frameAbort:
		var wa wireAbort
		if err := json.Unmarshal(payload, &wa); err != nil {
			wa.Msg = fmt.Sprintf("undecodable abort frame: %v", err)
		}
		aerr := remoteAbortError(int(h.src), wa)
		if wa.Crash && wa.CrashRank != t.me {
			// A remotely reported crash counts as a lost peer here too,
			// even if the local socket to it still looks healthy (hung
			// peer detected by someone else's timeout): Reset must not
			// clear the world's poison before the rank rejoins.
			t.lostMu.Lock()
			if _, seen := t.lostRanks[wa.CrashRank]; !seen {
				t.lostRanks[wa.CrashRank] = aerr
			}
			t.lostMu.Unlock()
		}
		t.abort.set(aerr)
		t.wakeAll()
	case frameBarrierEnter:
		t.barrierEnter(h.tag)
	case frameBarrierRelease:
		t.barrierRelease(h.tag)
	}
}

// remoteAbortError reconstructs an abort error received off the wire,
// preserving the errors.Is identities that matter to callers: ErrAborted
// always, and the context sentinels when the originating process aborted
// for cancellation — that is what lets every worker process of a
// cancelled sort return its own ctx.Err().
func remoteAbortError(src int, wa wireAbort) error {
	switch {
	case wa.Crash:
		return &PeerCrashError{Rank: wa.CrashRank, Err: fmt.Errorf("reported by rank %d: %s", src, wa.Msg)}
	case wa.Canceled:
		return fmt.Errorf("%w: %w: remote abort from rank %d: %s", ErrAborted, context.Canceled, src, wa.Msg)
	case wa.Deadline:
		return fmt.Errorf("%w: %w: remote abort from rank %d: %s", ErrAborted, context.DeadlineExceeded, src, wa.Msg)
	default:
		return fmt.Errorf("%w: remote abort from rank %d: %s", ErrAborted, src, wa.Msg)
	}
}

// ---------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------

// Barrier blocks the local rank until every rank of the world has
// entered the same barrier episode.
func (t *TCPTransport) Barrier(rank int) error {
	if rank != t.me {
		return fmt.Errorf("comm: tcp endpoint hosts rank %d, cannot barrier as rank %d", t.me, rank)
	}
	t.bar.mu.Lock()
	t.bar.seq++
	seq := t.bar.seq
	t.bar.mu.Unlock()

	if err := t.sendCtrl(0, frameBarrierEnter, seq); err != nil {
		return err
	}

	t.bar.mu.Lock()
	defer t.bar.mu.Unlock()
	for t.bar.released < seq {
		if err := t.abort.get(); err != nil {
			return err
		}
		if t.closed.Load() {
			return ErrTransportClosed
		}
		t.bar.cond.Wait()
	}
	return nil
}

// sendCtrl emits a control frame (barrier, abort uses its own path) to
// dst, looping back locally when dst is the hosted rank. The barrier
// sequence number travels in the tag field.
func (t *TCPTransport) sendCtrl(dst int, kind byte, seq uint32) error {
	if dst == t.me {
		switch kind {
		case frameBarrierEnter:
			t.barrierEnter(seq)
		case frameBarrierRelease:
			t.barrierRelease(seq)
		}
		return nil
	}
	if err := t.abort.get(); err != nil {
		return err
	}
	frame := make([]byte, frameHeaderLen)
	putFrameHeader(frame, frameHeader{
		kind: kind,
		src:  uint32(t.me),
		dst:  uint32(dst),
		tag:  seq,
		gen:  t.gen.Load(),
	})
	pc := t.conns[dst].Load()
	if pc == nil || pc.dead.Load() {
		if err := t.abort.get(); err != nil {
			return err
		}
		return &PeerCrashError{Rank: dst}
	}
	pc.enqueue(frame)
	return nil
}

// barrierEnter records one rank's arrival at barrier seq (rank 0 only)
// and releases the episode when all p ranks have arrived.
func (t *TCPTransport) barrierEnter(seq uint32) {
	if t.me != 0 {
		return // protocol error; harmless to ignore
	}
	t.bar.mu.Lock()
	t.bar.enters[seq]++
	complete := t.bar.enters[seq] == t.p
	if complete {
		delete(t.bar.enters, seq)
	}
	t.bar.mu.Unlock()
	if !complete {
		return
	}
	for r := 1; r < t.p; r++ {
		t.sendCtrl(r, frameBarrierRelease, seq)
	}
	t.barrierRelease(seq)
}

// barrierRelease unblocks local waiters of barrier episodes ≤ seq.
func (t *TCPTransport) barrierRelease(seq uint32) {
	t.bar.mu.Lock()
	if seq > t.bar.released {
		t.bar.released = seq
	}
	t.bar.cond.Broadcast()
	t.bar.mu.Unlock()
}

// ---------------------------------------------------------------------
// Abort / Reset / lifecycle
// ---------------------------------------------------------------------

// Abort latches err locally, unblocks every local waiter and broadcasts
// a generation-fenced abort frame to every peer, so all processes of
// the world observe the failure instead of hanging. Cancellation
// structure (context.Canceled / DeadlineExceeded) survives the wire.
func (t *TCPTransport) Abort(err error) {
	t.abort.set(err)
	latched := t.abort.get()
	wa := wireAbort{
		Msg:      latched.Error(),
		Canceled: errors.Is(latched, context.Canceled),
		Deadline: errors.Is(latched, context.DeadlineExceeded),
	}
	// A crash abort carries the crashed rank, so every survivor
	// reconstructs the same typed error whoever detected the death.
	var crash *PeerCrashError
	if errors.As(latched, &crash) {
		wa.Crash = true
		wa.CrashRank = crash.Rank
	}
	payload, jerr := json.Marshal(wa)
	if jerr != nil {
		payload = []byte("{}")
	}
	gen := t.gen.Load()
	for r := range t.conns {
		pc := t.conns[r].Load()
		if pc == nil || pc.dead.Load() {
			continue
		}
		frame := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
		frame = append(frame, payload...)
		putFrameHeader(frame, frameHeader{
			kind: frameAbort,
			src:  uint32(t.me),
			dst:  uint32(pc.peer),
			gen:  gen,
			len:  uint64(len(payload)),
		})
		pc.enqueue(frame)
	}
	t.wakeAll()
}

// wakeAll unblocks local waiters so they observe the abort latch.
func (t *TCPTransport) wakeAll() {
	t.box.mu.Lock()
	t.box.cond.Broadcast()
	t.box.mu.Unlock()
	t.bar.mu.Lock()
	t.bar.cond.Broadcast()
	t.bar.mu.Unlock()
}

// Err returns the abort error, or nil while the transport is live.
func (t *TCPTransport) Err() error { return t.abort.get() }

// Reset advances the transport to the next generation: the epoch bump
// that lets a long-lived engine reuse one mesh across sorts. Queued
// messages of the old generation are discarded, the abort latch clears,
// the barrier rearms, traffic counters zero — and frames a faster peer
// already sent for the new generation are delivered out of the pending
// buffers. If a peer crashed, Reset first waits up to RejoinWait for it
// to rejoin (healing the mesh before the next run); peers still lost
// after the wait re-poison the transport so the run fails fast with
// their *PeerCrashError instead of wedging against a dead socket until
// the watchdog fires. Only call while the hosted rank is not running
// (Pool.Run does this between runs); peers Reset their own endpoints in
// the same lockstep.
func (t *TCPTransport) Reset() {
	t.awaitRejoin()
	t.genMu.Lock()
	next := t.gen.Load() + 1
	t.box.mu.Lock()
	t.box.queue = nil
	t.box.mu.Unlock()
	t.bar.mu.Lock()
	t.bar.seq = 0
	t.bar.released = 0
	t.bar.enters = make(map[uint32]int)
	t.bar.mu.Unlock()
	t.abort.reset()
	t.lostMu.Lock()
	for _, lerr := range t.lostRanks {
		// A still-dead peer poisons the next run up front: it fails
		// with the crash error immediately instead of hanging.
		t.abort.set(lerr)
		break
	}
	t.lostMu.Unlock()
	t.counters.mu.Lock()
	t.counters.c = Counters{
		// Lifecycle counters describe the mesh, not one run; they
		// survive the epoch bump.
		Reconnects: t.counters.c.Reconnects,
		Respawns:   t.counters.c.Respawns,
	}
	t.counters.mu.Unlock()
	t.gen.Store(next)
	// Deliver frames peers raced ahead with; drop ones that somehow
	// still precede the new generation.
	for r := range t.conns {
		pc := t.conns[r].Load()
		if pc == nil {
			continue
		}
		var keep []pendingFrame
		for _, pf := range pc.pending {
			switch {
			case pf.h.gen == next:
				t.applyFrame(pf.h, pf.msg, pf.ctrl)
			case pf.h.gen > next:
				keep = append(keep, pf)
			}
		}
		pc.pending = keep
	}
	t.genMu.Unlock()
}

// awaitRejoin blocks until every crashed peer has rejoined, up to
// RejoinWait. It runs before Reset takes the generation lock and before
// the epoch bump: a joiner adopts the coordinator's pre-bump generation
// and then performs its own Reset, so everyone enters the next run in
// lockstep (the pending-frame buffers absorb any residual staggering).
func (t *TCPTransport) awaitRejoin() {
	if t.opts.RejoinWait <= 0 {
		return
	}
	deadline := time.Now().Add(t.opts.RejoinWait)
	for !t.closed.Load() {
		t.lostMu.Lock()
		lost := len(t.lostRanks)
		t.lostMu.Unlock()
		if lost == 0 || !time.Now().Before(deadline) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Counters returns the hosted rank's measured wire traffic; r must be
// the local rank (remote ranks' counters live in their processes and
// read zero here).
func (t *TCPTransport) Counters(r int) Counters {
	if r != t.me {
		return Counters{}
	}
	t.counters.mu.Lock()
	defer t.counters.mu.Unlock()
	return t.counters.c
}

// TotalCounters returns the local rank's counters: a single process
// cannot see its peers' counters without communication. Whole-world
// totals over TCP are the sum of each process's TotalCounters (the
// loopback mesh does this summation for in-process worlds).
func (t *TCPTransport) TotalCounters() Counters { return t.Counters(t.me) }

// ResetCounters zeroes the local rank's traffic counters (lifecycle
// counters — Reconnects, Respawns — survive).
func (t *TCPTransport) ResetCounters() {
	t.counters.mu.Lock()
	t.counters.c = Counters{
		Reconnects: t.counters.c.Reconnects,
		Respawns:   t.counters.c.Respawns,
	}
	t.counters.mu.Unlock()
}

// Close tears the endpoint down gracefully: a shutdown frame and a
// half-close on every connection, then waiting (up to ShutdownTimeout)
// for peers to finish their own teardown before force-closing sockets.
// After Close every operation fails with ErrTransportClosed. Close is
// idempotent and leaves no goroutines behind.
func (t *TCPTransport) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(t.stop)
	if t.ln != nil && !t.lnKeep.Load() {
		t.ln.Close()
	}
	gen := t.gen.Load()
	for r := range t.conns {
		pc := t.conns[r].Load()
		if pc == nil || pc.dead.Load() {
			continue
		}
		frame := make([]byte, frameHeaderLen)
		putFrameHeader(frame, frameHeader{kind: frameShutdown, src: uint32(t.me), dst: uint32(pc.peer), gen: gen})
		pc.mu.Lock()
		pc.outq = append(pc.outq, frame)
		pc.closing = true
		pc.cond.Broadcast()
		pc.mu.Unlock()
	}
	t.wakeAll()

	done := make(chan struct{})
	go func() {
		t.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(t.opts.ShutdownTimeout):
		t.forceClose()
		<-done
	}
	t.forceClose()
	return nil
}

// Kill force-closes the endpoint with no shutdown handshake at all —
// the in-process equivalent of kill -9 on a worker: every peer observes
// a raw EOF (no shutdown frame preceding it) and aborts its world with
// a *PeerCrashError for this rank. Fault-injection substrate; real
// deployments just die.
func (t *TCPTransport) Kill() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	close(t.stop)
	t.forceClose()
	t.wakeAll()
	t.wg.Wait()
}

// forceClose closes every socket and the listener outright (bootstrap
// failure, Kill and the shutdown-timeout path).
func (t *TCPTransport) forceClose() {
	if t.ln != nil && !t.lnKeep.Load() {
		t.ln.Close()
	}
	for r := range t.conns {
		pc := t.conns[r].Load()
		if pc == nil {
			continue
		}
		pc.c.Close()
		pc.mu.Lock()
		pc.closing = true
		pc.cond.Broadcast()
		pc.mu.Unlock()
	}
}

// ---------------------------------------------------------------------
// Resize (graceful re-rendezvous)
// ---------------------------------------------------------------------

// Resize moves this endpoint into a world of newProcs ranks: it closes
// the current mesh and performs a fresh rendezvous at the same
// coordinator address, reusing rank 0's well-known listener so workers
// never see the address change. Every surviving rank must call Resize
// with the same newProcs between runs (SPMD, like Reset); ranks with
// me >= newProcs leave the world — their Resize closes the endpoint and
// returns (nil, nil) — and brand-new ranks join with a plain DialTCP
// against the same coordinator. The returned transport is a fresh
// endpoint (generation restarts at 1); the caller rebuilds its engine
// around it.
func (t *TCPTransport) Resize(newProcs int) (*TCPTransport, error) {
	if newProcs < 1 {
		panicSize(newProcs)
	}
	opts := t.opts
	opts.Procs = newProcs
	opts.Rejoin = false
	opts.CoordinatorListener = nil
	if t.me >= newProcs {
		t.Close()
		return nil, nil
	}
	if t.me == 0 {
		// Detach the coordinator listener before Close so its backlog
		// keeps catching the new world's registrations while the old
		// world drains.
		opts.CoordinatorListener = t.detachListener()
	}
	t.Close()
	return DialTCP(opts)
}

// detachListener hands the endpoint's listener to a successor: teardown
// stops closing it, and the blocked acceptLoop is kicked loose with an
// immediate deadline (the successor's bootstrap sets a fresh one).
func (t *TCPTransport) detachListener() net.Listener {
	if t.ln == nil {
		return nil
	}
	t.lnKeep.Store(true)
	if tl, ok := t.ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Now())
	}
	return t.ln
}

// ---------------------------------------------------------------------
// Loopback mesh
// ---------------------------------------------------------------------

// TCPLoopback is an in-process world over real sockets: p single-rank
// TCPTransport endpoints on loopback, fronted as one Transport so the
// standard World/Pool drive and the conformance suite run every byte
// through the full wire path (codec, framing, generation fence) without
// multiple processes. It doubles as the fault-injection substrate: Kill
// simulates kill -9 of one rank, Respawn rejoins a replacement, Resize
// re-rendezvouses the whole world at a new size — all with the same
// wire traffic a multi-process deployment would see.
type TCPLoopback struct {
	coord string
	tmpl  TCPOptions // per-endpoint template: timeouts, liveness, rejoin policy
	nodes []*TCPTransport
}

var (
	_ Transport = (*TCPLoopback)(nil)
	_ io.Closer = (*TCPLoopback)(nil)
)

// NewTCPLoopback builds a p-rank world of real localhost TCP
// connections inside one process — the `tcp` backend's convenience form
// for tests and single-machine runs (Config.Transport: tcp without a
// coordinator). Every message is encoded, framed, sent through the
// kernel and decoded exactly as in the multi-process deployment. An
// optional TCPOptions value is the template applied to every endpoint
// (timeouts, PeerTimeout/HeartbeatInterval, RejoinWait); its identity
// fields (Coordinator, Rank, Procs, listeners, Rejoin) are overwritten
// per rank. The returned transport must be Closed to release its
// sockets and goroutines.
func NewTCPLoopback(p int, opt ...TCPOptions) (*TCPLoopback, error) {
	if p < 1 {
		panicSize(p)
	}
	var tmpl TCPOptions
	if len(opt) > 0 {
		tmpl = opt[0]
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("comm: tcp loopback listen: %w", err)
	}
	coord := ln.Addr().String()
	m := &TCPLoopback{coord: coord, tmpl: tmpl, nodes: make([]*TCPTransport, p)}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			opts := m.nodeOpts(r, p)
			if r == 0 {
				opts.CoordinatorListener = ln
			}
			m.nodes[r], errs[r] = DialTCP(opts)
		}(r)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

// nodeOpts instantiates the template for one rank of a procs-sized
// world.
func (m *TCPLoopback) nodeOpts(rank, procs int) TCPOptions {
	opts := m.tmpl
	opts.Coordinator = m.coord
	opts.Rank = rank
	opts.Procs = procs
	opts.ListenAddr = ""
	opts.CoordinatorListener = nil
	opts.Rejoin = false
	return opts
}

// CoordinatorAddr returns the world's rendezvous address — where
// respawned or newly added ranks register.
func (m *TCPLoopback) CoordinatorAddr() string { return m.coord }

// Node returns rank r's endpoint (fault-injection and inspection hook).
func (m *TCPLoopback) Node(r int) *TCPTransport { return m.nodes[r] }

// Kill force-closes rank r's endpoint with no shutdown handshake — the
// loopback equivalent of kill -9 on that worker process. Surviving
// ranks observe a raw EOF and abort with a *PeerCrashError for r.
func (m *TCPLoopback) Kill(r int) { m.nodes[r].Kill() }

// Respawn replaces a killed rank with a fresh endpoint that rejoins the
// running world (DialTCP with Rejoin), exactly like a respawned worker
// process re-registering at the coordinator. Call it between runs, from
// the goroutine driving the world: the swap is published by the
// happens-before of the next Run. Rank 0 cannot respawn — it hosts the
// coordinator.
func (m *TCPLoopback) Respawn(r int) error {
	old := m.nodes[r]
	if old != nil && !old.closed.Load() {
		return fmt.Errorf("comm: rank %d is still alive; Kill it before Respawn", r)
	}
	opts := m.nodeOpts(r, len(m.nodes))
	opts.Rejoin = true
	nt, err := DialTCP(opts)
	if err != nil {
		return err
	}
	m.nodes[r] = nt
	return nil
}

// Resize moves the world to newProcs ranks with a clean re-rendezvous
// at the same coordinator address: surviving ranks Resize their
// endpoints, dropped ranks close, added ranks dial in fresh. Call it
// between runs; every endpoint afterwards is new (generation restarts),
// so rebuild any World/Pool around the mesh.
func (m *TCPLoopback) Resize(newProcs int) error {
	if newProcs < 1 {
		panicSize(newProcs)
	}
	old := m.nodes
	nodes := make([]*TCPTransport, newProcs)
	n := max(len(old), newProcs)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if r < len(old) {
				nt, err := old[r].Resize(newProcs)
				if r < newProcs {
					nodes[r], errs[r] = nt, err
				} else {
					errs[r] = err // leaving rank: nt is nil
				}
				return
			}
			nodes[r], errs[r] = DialTCP(m.nodeOpts(r, newProcs))
		}(r)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		for _, nt := range nodes {
			if nt != nil {
				nt.Close()
			}
		}
		return err
	}
	m.nodes = nodes
	return nil
}

// Size returns the number of ranks.
func (m *TCPLoopback) Size() int { return len(m.nodes) }

// Send routes through the sending rank's endpoint.
func (m *TCPLoopback) Send(src, dst int, tag Tag, payload any, bytes int64) error {
	return m.nodes[src].Send(src, dst, tag, payload, bytes)
}

// Recv routes through the receiving rank's endpoint.
func (m *TCPLoopback) Recv(dst, src int, tag Tag) (Message, error) {
	return m.nodes[dst].Recv(dst, src, tag)
}

// TryRecv routes through the receiving rank's endpoint.
func (m *TCPLoopback) TryRecv(dst, src int, tag Tag) (Message, bool, error) {
	return m.nodes[dst].TryRecv(dst, src, tag)
}

// Barrier routes through the entering rank's endpoint.
func (m *TCPLoopback) Barrier(rank int) error { return m.nodes[rank].Barrier(rank) }

// Abort latches every endpoint immediately (the wire broadcast alone
// would leave a window in which a not-yet-poisoned endpoint accepts
// operations).
func (m *TCPLoopback) Abort(err error) {
	for _, n := range m.nodes {
		n.Abort(err)
	}
}

// Err returns the first endpoint's latched abort error, if any.
func (m *TCPLoopback) Err() error {
	for _, n := range m.nodes {
		if err := n.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Reset advances every endpoint to the next generation. The mesh is
// driven by one Pool/World, so no rank is running during Reset and the
// per-endpoint epochs stay in lockstep.
func (m *TCPLoopback) Reset() {
	for _, n := range m.nodes {
		n.Reset()
	}
}

// Counters returns rank r's measured wire traffic.
func (m *TCPLoopback) Counters(r int) Counters { return m.nodes[r].Counters(r) }

// TotalCounters sums measured traffic across all ranks.
func (m *TCPLoopback) TotalCounters() Counters {
	var total Counters
	for r, n := range m.nodes {
		total.Add(n.Counters(r))
	}
	return total
}

// ResetCounters zeroes all ranks' counters.
func (m *TCPLoopback) ResetCounters() {
	for _, n := range m.nodes {
		n.ResetCounters()
	}
}

// Close tears down every endpoint concurrently.
func (m *TCPLoopback) Close() error {
	var wg sync.WaitGroup
	for _, n := range m.nodes {
		if n == nil {
			continue
		}
		wg.Add(1)
		go func(n *TCPTransport) {
			defer wg.Done()
			n.Close()
		}(n)
	}
	wg.Wait()
	return nil
}
