// Package exchange implements the data-movement phase shared by every
// splitter-based sort in this repository (§2.2 step 3): partitioning the
// local sorted input by the final splitters, the personalized all-to-all
// that sends each bucket to its owner, and the post-exchange imbalance
// measurement.
//
// Buckets are decoupled from ranks: the paper's flat sort uses one bucket
// per processor, the two-level node optimization (§6.1) uses one bucket
// per node, and ChaNGa (§6.3) uses many virtual-processor buckets per
// core, possibly placed non-contiguously. An Owner function maps buckets
// to ranks; all runs destined to the same rank travel in one combined
// message (the §6.1 message-combining optimization falls out for free).
//
// Exchange is the bandwidth-dominant phase of the sort (the 2N/p BSP
// term of §5.1). Two data planes implement it: the materializing
// all-to-all (Exchange, merged afterwards with merge.KWay) and the
// streaming pipeline (ExchangeStream), which sends each destination's
// payload in ChunkKeys-sized chunks interleaved across destinations and
// merges received chunks incrementally, overlapping the exchange tail
// (§6.2) under a credit window that bounds peak in-flight data.
// ExchangeMerge dispatches between them; both produce rank-identical
// output. Everything is built on comm.Endpoint Send/Recv (plus the
// TryRecv/RecvAny probes of comm.StreamEndpoint for the streaming
// plane), so it runs unchanged over the byte-accounted simulated
// transport or the in-process fast path — see internal/comm.Transport.
package exchange
