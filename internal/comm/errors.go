package comm

// errors.go defines the typed failure taxonomy of the transport layer.
// Before these types existed, peer death, bootstrap failures and
// protocol-version mixes all surfaced as formatted strings; callers that
// wanted to react (retry a bootstrap, trigger a respawn, refuse a
// mixed-version fleet) had to match message text. Each condition now has
// a structured error with errors.Is/As support, and the TCP wire
// protocol carries enough of that structure (wireAbort.Crash/CrashRank)
// that every surviving process of a crashed world reconstructs the same
// typed value.

import (
	"fmt"
)

// PeerCrashError reports that a peer rank of a TCP world died: its
// connection delivered an EOF without a shutdown frame, its heartbeats
// went silent past TCPOptions.PeerTimeout, or a fault injector crashed
// it. Every surviving rank of the world observes a PeerCrashError with
// the same Rank — locally detected or reconstructed from the abort
// broadcast — so a supervisor can respawn exactly the rank that died.
//
// PeerCrashError matches errors.Is(err, ErrAborted): a crash aborts the
// world like any other failure, it is just a diagnosable one.
type PeerCrashError struct {
	// Rank is the rank that crashed.
	Rank int
	// Err is the local evidence (EOF, timeout, injected fault); it may
	// differ between survivors, unlike Rank. May be nil for an error
	// reconstructed off the wire.
	Err error
}

// Error returns the crash description.
func (e *PeerCrashError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("comm: rank %d crashed: %v", e.Rank, e.Err)
	}
	return fmt.Sprintf("comm: rank %d crashed", e.Rank)
}

// Unwrap links the crash to ErrAborted (and to the local evidence), so
// existing errors.Is(err, ErrAborted) call sites keep working.
func (e *PeerCrashError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrAborted, e.Err}
	}
	return []error{ErrAborted}
}

// BootstrapError reports that a TCP endpoint failed to join (or rejoin)
// its world: the rendezvous, the mesh construction or the rejoin
// handshake did not complete. DialTCP wraps every setup failure in one,
// so callers can distinguish "the world never formed" from runtime
// failures like PeerCrashError.
type BootstrapError struct {
	// Rank is the local rank that failed to join.
	Rank int
	// Err is the underlying failure (possibly a VersionMismatchError).
	Err error
}

// Error returns the bootstrap failure description.
func (e *BootstrapError) Error() string {
	return fmt.Sprintf("comm: tcp bootstrap of rank %d failed: %v", e.Rank, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *BootstrapError) Unwrap() error { return e.Err }

// VersionMismatchError reports that a bootstrap peer speaks a different
// hsswire protocol version than this binary. Worlds run exactly one
// protocol version (docs/WIRE.md §Versioning); mixed-version fleets must
// refuse to connect rather than corrupt each other.
type VersionMismatchError struct {
	// Local is this binary's protocol identifier ("hsswire/N").
	Local string
	// Peer is the identifier the remote end presented.
	Peer string
}

// Error returns the mismatch description.
func (e *VersionMismatchError) Error() string {
	return fmt.Sprintf("comm: wire protocol mismatch: peer speaks %q, this binary %q", e.Peer, e.Local)
}
