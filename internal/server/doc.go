// Package server is the sort-as-a-service layer behind cmd/hssortd: a
// long-lived HTTP daemon front end over the hssort Sorter engine.
//
// Clients submit named sort jobs (POST /v1/jobs — int64/uint64/float64
// or variable-length byte-string keys, optionally with record payloads
// in tow) under a tenant ID; the daemon runs them on a pool of warm
// Sorter engines (one per key-type×shape, built lazily, kept hot so
// repeated sorts reuse the engine's transport, worker goroutines and
// scratch) and answers job-status, sorted-shard and rank/percentile
// queries (GET /v1/jobs/{id}, GET /v1/datasets/{name}/rank).
//
// The scheduler between the HTTP layer and the engines provides the
// multi-tenant guarantees a shared daemon needs: a bounded FIFO
// admission queue (submissions beyond it are refused with a typed
// *hssort.QuotaExceededError, HTTP 429), per-tenant concurrency quotas
// with fair round-robin dequeue across tenants, and per-job deadlines
// and cancellation riding the engine's context plumbing — a canceled or
// deadline-expired job aborts mid-phase on every rank and the engine
// returns to the pool warm and usable.
//
// Recurring tenants hit the plan cache: each dataset is fingerprinted
// by a cheap distribution sketch (sorted-sample quantiles, after
// "Adaptive Sampling for Rapidly Matching Histograms"), and a cached
// splitter Plan for (tenant, fingerprint) lets the sort skip histogram
// determination entirely — zero rounds, the regime Yang/Harsh/Solomonik
// 2022 shows amortizes splitter determination across repeated sorts.
// Fingerprint collisions are safe: cached plans run under the
// Config.PlanStaleness guard, which re-histograms when the stored
// splitters would skew bucket loads, and the cache entry is dropped.
//
// GET /metrics exposes the aggregated per-sort hssort.Stats (rounds,
// achieved epsilon, exchange bytes, plan cache hits/misses/replans,
// queue depth, per-tenant job counts) in Prometheus text format;
// GET /healthz reports liveness and flips to 503 while draining.
// docs/API.md specifies the HTTP surface.
package server
