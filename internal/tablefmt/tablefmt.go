package tablefmt

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	headers []string
	rows    [][]string
}

// New creates a table with the given column headers.
func New(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; missing cells render empty, extra cells are kept
// and widen the table.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// String renders the table with two-space column gutters and a rule under
// the header.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		// Trim trailing padding.
		for b.Len() > 0 && b.String()[b.Len()-1] == ' ' {
			s := b.String()
			b.Reset()
			b.WriteString(strings.TrimRight(s, " "))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, cols)
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Bytes humanizes a byte count with binary-ish decimal units, matching
// the paper's style ("184 MB", "1600 GB").
func Bytes(b float64) string {
	switch {
	case b >= 1e12:
		return fmt.Sprintf("%.4g TB", b/1e12)
	case b >= 1e9:
		return fmt.Sprintf("%.4g GB", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.4g MB", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.4g KB", b/1e3)
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

// Count humanizes a key count (K/M/B suffixes as in Fig 4.1's axis).
func Count(c float64) string {
	switch {
	case c >= 1e9:
		return fmt.Sprintf("%.4gB", c/1e9)
	case c >= 1e6:
		return fmt.Sprintf("%.4gM", c/1e6)
	case c >= 1e3:
		return fmt.Sprintf("%.4gK", c/1e3)
	default:
		return fmt.Sprintf("%.0f", c)
	}
}
