// Package spill is the out-of-core plane: it writes sorted runs to
// compressed, checksummed run files on disk and streams them back as
// just another chunk source of the incremental k-way merges, so a sort
// whose data exceeds Config.MemoryBudget completes with a bounded
// resident working set instead of failing or thrashing.
//
// The package has three moving parts:
//
//   - Manager: one per rank. It owns the rank's spill directory
//     (created under Config.SpillDir, or a private temp directory),
//     meters resident bytes against the budget (Acquire/Release — it
//     implements merge.Budget), answers the admission question
//     (WouldExceed) the budget-aware paths key their spill decisions
//     on, and aggregates the per-sort counters behind
//     Stats.SpilledBytes / SpillFileBytes / SpillReads /
//     PeakResidentBytes.
//
//   - Writer / Run / RunReader: the run-file codec. A Writer splits a
//     sorted key stream into frames — delta-varint coded on the pure
//     code plane, raw fixed-size records otherwise, then
//     flate-compressed when that wins — each carrying a CRC-32C of its
//     stored payload, terminated by an explicit final marker so
//     truncation is always detectable (docs/SPILL.md specifies the
//     format). A RunReader feeds the frames back one at a time through
//     merge.Source, so the merge holds one frame per run, not the runs.
//
//   - LocalSort: the spill-aware local-sort kernel shared by the sort
//     pipelines. In budget it is exactly the in-memory kernel (parallel
//     radix on the code plane, slices.SortFunc on the comparator
//     plane); over budget it sorts budget-sized segments with the same
//     kernel, spills each as a run, and merges the runs back into the
//     input's storage through the loser tree — output identical either
//     way.
//
// Failure handling follows the repository's typed-error taxonomy: every
// disk failure and every corrupt frame surfaces as a *spill.Error
// naming the operation and path (re-exported as hssort.SpillError), and
// run files are removed as they are consumed, on abort, and wholesale
// by Manager.Reset/Close — a crashed rank's leftovers are wiped when
// its respawn reconstructs the deterministic per-rank directory.
package spill
