package hssort

import (
	"cmp"
	"fmt"
)

// KV pairs a sortable key with an opaque payload that travels with it
// through the exchange — the paper's experimental records are 8-byte
// integer keys with a 4-byte payload (Fig 6.1). Payloads are never
// inspected: all splitter decisions use only keys.
type KV[K cmp.Ordered, V any] struct {
	// Key orders the record.
	Key K
	// Val rides along.
	Val V
}

// CompareKV orders KV records by key. Records with equal keys compare
// equal; combine with Config.TagDuplicates for a strict total order on
// duplicate-heavy data.
func CompareKV[K cmp.Ordered, V any](a, b KV[K, V]) int {
	return cmp.Compare(a.Key, b.Key)
}

// SortKV sorts keyed records across simulated processors; see Sort for
// semantics. The HistogramSort and Radix algorithms are unavailable for
// records (they need key-space arithmetic); use the HSS variants or the
// sample sorts.
//
// When the key type admits an order-preserving code (built-in for the
// integer and float key types, or a key Coder supplied via Config.Coder)
// and Config.CodePath allows it, the records ride the decorated code
// plane: the local sort radix-sorts a uint64 code decoration with the
// payloads in tow, and partition cuts and merges compare codes instead
// of calling the comparator. Records with equal keys keep their
// per-bucket multiset either way, but — as with any unstable sort — not
// a particular relative order.
func SortKV[K cmp.Ordered, V any](cfg Config, shards [][]KV[K, V]) ([][]KV[K, V], Stats, error) {
	keyCoder, err := resolveCoder(cfg, coderFor[K]())
	if err != nil {
		return nil, Stats{}, err
	}
	var code func(KV[K, V]) uint64
	if keyCoder != nil {
		if cfg, err = guardNaNKV(cfg, shards); err != nil {
			return nil, Stats{}, err
		}
		code = func(kv KV[K, V]) uint64 { return keyCoder.Encode(kv.Key) }
	}
	return sortImpl(cfg, shards, CompareKV[K, V], nil, code)
}

// guardNaNKV is guardNaN for record keys.
func guardNaNKV[K cmp.Ordered, V any](cfg Config, shards [][]KV[K, V]) (Config, error) {
	var zero K
	if _, isFloat := any(zero).(float64); !isFloat || cfg.CodePath == CodePathOff {
		return cfg, nil
	}
	for _, s := range shards {
		for _, kv := range s {
			if kv.Key == kv.Key {
				continue
			}
			if cfg.CodePath == CodePathOn {
				return cfg, fmt.Errorf("hssort: CodePathOn, but the input contains NaN keys, whose comparator order (NaN first) no order-preserving code realizes")
			}
			cfg.CodePath = CodePathOff
			return cfg, nil
		}
	}
	return cfg, nil
}
