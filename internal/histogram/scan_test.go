package histogram

import (
	"math/rand/v2"
	"slices"
	"testing"
	"testing/quick"
)

func TestScanKnown(t *testing.T) {
	// Global 0..99, 4 buckets, eps=0 → cap 25. Sample at every 10th key.
	keys := []int64{9, 19, 29, 39, 49, 59, 69, 79, 89, 99}
	ranks := []int64{9, 19, 29, 39, 49, 59, 69, 79, 89, 99}
	res, err := Scan(keys, ranks, 100, 4, 0, icmp)
	if err != nil {
		t.Fatal(err)
	}
	// Buckets close at the largest sample rank <= start+25:
	// start 0 → 19 (29 > 25); start 19 → 39 (49 > 44); start 39 → 59
	// (69 > 64). The sparse sample leaves the remainder (41 keys) to the
	// last bucket — exactly the failure mode Theorem 3.2.1's sampling
	// ratio makes improbable.
	want := []int64{19, 39, 59}
	if !slices.Equal(res.Splitters, want) {
		t.Errorf("splitters %v, want %v", res.Splitters, want)
	}
	if res.LastBucket != 41 {
		t.Errorf("last bucket %d, want 41", res.LastBucket)
	}
}

func TestScanErrors(t *testing.T) {
	if _, err := Scan([]int64{1}, []int64{1, 2}, 10, 2, 0.1, icmp); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Scan([]int64{1}, []int64{1}, 10, 0, 0.1, icmp); err == nil {
		t.Error("buckets=0 accepted")
	}
	if _, err := Scan([]int64{1}, []int64{1}, 10, 5, 0.1, icmp); err == nil {
		t.Error("too-small sample accepted")
	}
}

// TestScanRejectsMalformedSample pins the validation paths: duplicate
// sample keys, out-of-order sample keys, and decreasing ranks must each
// be rejected — before validation, such input silently flowed through
// the maxHi clamp and could emit duplicate or out-of-order splitters.
func TestScanRejectsMalformedSample(t *testing.T) {
	// Duplicate keys (equal under cmp).
	if _, err := Scan([]int64{5, 5, 9}, []int64{10, 20, 30}, 100, 3, 0.1, icmp); err == nil {
		t.Error("duplicate sample keys accepted")
	}
	// Out-of-order keys.
	if _, err := Scan([]int64{9, 5, 12}, []int64{10, 20, 30}, 100, 3, 0.1, icmp); err == nil {
		t.Error("out-of-order sample keys accepted")
	}
	// Non-monotone ranks over properly sorted keys.
	if _, err := Scan([]int64{3, 5, 9}, []int64{30, 20, 40}, 100, 3, 0.1, icmp); err == nil {
		t.Error("decreasing ranks accepted")
	}
	// Equal ranks for distinct adjacent keys are legitimate (no data
	// between them) and must pass.
	if _, err := Scan([]int64{3, 5, 9}, []int64{20, 20, 40}, 100, 3, 0.1, icmp); err != nil {
		t.Errorf("equal ranks for distinct keys rejected: %v", err)
	}
}

func TestScanSingleBucket(t *testing.T) {
	res, err := Scan([]int64{}, []int64{}, 42, 1, 0.1, icmp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Splitters) != 0 || res.LastBucket != 42 {
		t.Errorf("res = %+v", res)
	}
}

// TestScanTheorem321 validates the shape of Theorem 3.2.1: sampling each
// key with probability p·s/N for s = 2/ε and scanning yields a last bucket
// within N(1+ε)/p, with no overfull buckets, in the overwhelming majority
// of trials.
func TestScanTheorem321(t *testing.T) {
	const n = 200000
	const p = 32
	const eps = 0.2
	global := seq(n)
	prob := float64(p) * (2 / eps) / float64(n)
	capBound := int64(float64(n) * (1 + eps) / p)
	rng := rand.New(rand.NewPCG(42, 43))
	bad := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		var keys, ranks []int64
		for i := 0; i < n; i++ {
			if rng.Float64() < prob {
				keys = append(keys, global[i])
				ranks = append(ranks, int64(i))
			}
		}
		res, err := Scan(keys, ranks, n, p, eps, icmp)
		if err != nil {
			t.Fatal(err)
		}
		if res.LastBucket > capBound || res.Overfull > 0 {
			bad++
		}
		// All buckets except possibly the last obey the cap by
		// construction when Overfull == 0.
		if res.Overfull == 0 {
			start := int64(0)
			for _, s := range res.Splitters {
				idx := slices.Index(keys, s)
				if ranks[idx]-start > capBound {
					t.Fatalf("bucket exceeded cap despite Overfull==0")
				}
				start = ranks[idx]
			}
		}
	}
	if bad > trials/5 {
		t.Errorf("%d/%d trials violated the w.h.p. bound", bad, trials)
	}
}

// TestScanProperty: with arbitrary samples, every non-last bucket respects
// the cap unless flagged Overfull, splitters are non-decreasing, and the
// bucket ranks partition [0, n).
func TestScanProperty(t *testing.T) {
	f := func(seed uint32, bRaw uint8) bool {
		rng := rand.New(rand.NewPCG(uint64(seed), 7))
		buckets := int(bRaw%8) + 2
		n := int64(10000)
		// Random distinct sample of 4*buckets keys.
		m := 4 * buckets
		seen := map[int64]bool{}
		var ranks []int64
		for len(ranks) < m {
			r := rng.Int64N(n)
			if !seen[r] {
				seen[r] = true
				ranks = append(ranks, r)
			}
		}
		slices.Sort(ranks)
		keys := slices.Clone(ranks) // identity keyspace
		res, err := Scan(keys, ranks, n, buckets, 0.1, icmp)
		if err != nil {
			return false
		}
		if len(res.Splitters) != buckets-1 {
			return false
		}
		if !slices.IsSorted(res.Splitters) {
			return false
		}
		return res.LastBucket >= 0 && res.LastBucket <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
