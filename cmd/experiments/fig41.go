package main

import (
	"fmt"

	"hssort"
	"hssort/internal/bspmodel"
	"hssort/internal/tablefmt"
)

// runFig41 regenerates Fig 4.1: overall sample size versus processor
// count at 5% load imbalance, for regular sampling, random sampling, and
// HSS with one round, two rounds, and constant oversampling. The analytic
// curves follow the paper's formulas; a measured column from the protocol
// simulator validates the HSS curves.
func runFig41(scale float64) error {
	const eps = 0.05
	const nPerProc = 1e6
	ps := []int{4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144}
	series := bspmodel.Fig41Series(ps, nPerProc, eps)
	order := []string{
		"regular sampling", "random sampling",
		"HSS - 1 round", "HSS - 2 rounds", "HSS - constant oversampling",
	}
	t := tablefmt.New(append([]string{"p"}, order...)...)
	for i, p := range ps {
		row := []string{tablefmt.Count(float64(p))}
		for _, name := range order {
			row = append(row, tablefmt.Count(series[name][i].Sample))
		}
		t.AddRow(row...)
	}
	fmt.Println("Analytic sample size (keys), eps = 5% (paper Fig 4.1):")
	fmt.Println()
	fmt.Print(t.String())

	// Measured validation: run the real protocol at a subset of scales.
	fmt.Println("\nMeasured (protocol simulator; keys actually gathered):")
	fmt.Println()
	mt := tablefmt.New("p", "HSS-1 round", "HSS-2 rounds", "HSS constant oversampling (rounds)")
	measured := []int{256, 1024, 4096, 16384}
	for _, p := range measured {
		n := int64(float64(p) * 512 * scale)
		if n < int64(p)*64 {
			n = int64(p) * 64
		}
		r1, err := hssort.SimulateSplitters(n, p, eps, hssort.HSSTheoretical, 1, 1)
		if err != nil {
			return err
		}
		r2, err := hssort.SimulateSplitters(n, p, eps, hssort.HSSTheoretical, 2, 1)
		if err != nil {
			return err
		}
		rc, err := hssort.SimulateSplitters(n, p, eps, hssort.HSS, 0, 1)
		if err != nil {
			return err
		}
		mt.AddRow(
			tablefmt.Count(float64(p)),
			tablefmt.Count(float64(r1.TotalSample)),
			tablefmt.Count(float64(r2.TotalSample)),
			fmt.Sprintf("%s (%d)", tablefmt.Count(float64(rc.TotalSample)), rc.Rounds),
		)
	}
	fmt.Print(mt.String())
	fmt.Println("\nPaper: the five curves separate by orders of magnitude at large p, in")
	fmt.Println("the order regular > random > HSS-1 > HSS-2 > constant oversampling.")
	return nil
}
