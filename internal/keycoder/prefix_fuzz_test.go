package keycoder

import (
	"bytes"
	"testing"
)

// The prefix plane's correctness rests on two properties of the 8-byte
// extraction: order preservation (never inverts bytes.Compare) and an
// exact collision characterization (codes tie exactly when the padded
// 8-byte prefixes tie — the condition under which the downstream
// comparator tie-break must fire). The fuzz targets drive both with
// coverage-guided byte pairs seeded at the treacherous corners: shared
// prefixes, strict-prefix pairs, keys straddling the 8-byte boundary,
// empty keys, and high-bit bytes (signedness traps).

var prefixSeeds = [][]byte{
	nil,
	{},
	{0},
	{0, 0},
	{0xff},
	{0x7f, 0xff},
	{0x80},
	[]byte("a"),
	[]byte("abcdefg"),
	[]byte("abcdefgh"),
	[]byte("abcdefghi"),
	[]byte("abcdefgi"),
	[]byte("https://"),
	[]byte("https://a.example/x"),
	[]byte("https://b.example/x"),
	{1, 2, 3, 4, 5, 6, 7, 8, 0},
	{1, 2, 3, 4, 5, 6, 7, 8, 255},
}

// FuzzPrefixCoder: the extraction must be order-preserving for
// bytes.Compare and must tie exactly on equal padded 8-byte prefixes.
func FuzzPrefixCoder(f *testing.F) {
	for _, a := range prefixSeeds {
		for _, b := range prefixSeeds {
			f.Add(a, b)
		}
	}
	var p Prefix
	f.Fuzz(func(t *testing.T, a, b []byte) {
		ca, cb := p.Code(a), p.Code(b)
		switch bytes.Compare(a, b) {
		case -1:
			if ca > cb {
				t.Fatalf("order inverted: %q < %q but %#x > %#x", a, b, ca, cb)
			}
		case 1:
			if ca < cb {
				t.Fatalf("order inverted: %q > %q but %#x < %#x", a, b, ca, cb)
			}
		default:
			if ca != cb {
				t.Fatalf("equal keys, different codes: %q -> %#x vs %#x", a, ca, cb)
			}
		}
		// Collision characterization: codes tie ⇔ the zero-padded 8-byte
		// prefixes tie.
		pa, pb := pad8(a), pad8(b)
		if (ca == cb) != bytes.Equal(pa, pb) {
			t.Fatalf("collision mismatch: %q vs %q codes %#x/%#x prefixes %x/%x",
				a, b, ca, cb, pa, pb)
		}
		// Representative round trip: re-extracting the canonical 8-byte
		// representative recovers the code exactly.
		if got := p.Code(PrefixBytes(ca)); got != ca {
			t.Fatalf("PrefixBytes(%#x) re-extracts to %#x", ca, got)
		}
	})
}

// FuzzPrefixTieBreakOrder: the composite order every prefix-plane
// pipeline realizes — code first, comparator on code ties — must agree
// with bytes.Compare as a total preorder.
func FuzzPrefixTieBreakOrder(f *testing.F) {
	for _, a := range prefixSeeds {
		for _, b := range prefixSeeds {
			f.Add(a, b)
		}
	}
	var p Prefix
	f.Fuzz(func(t *testing.T, a, b []byte) {
		composite := 0
		switch ca, cb := p.Code(a), p.Code(b); {
		case ca < cb:
			composite = -1
		case ca > cb:
			composite = 1
		default:
			composite = bytes.Compare(a, b)
		}
		if want := bytes.Compare(a, b); composite != want {
			t.Fatalf("composite order disagrees with bytes.Compare for %q vs %q: got %d want %d",
				a, b, composite, want)
		}
	})
}

// pad8 is the reference model of the extraction: the first 8 bytes,
// zero-padded.
func pad8(k []byte) []byte {
	out := make([]byte, 8)
	copy(out, k)
	return out
}

// TestPrefixBytesCanonical pins the representative layout: big-endian,
// exactly eight bytes.
func TestPrefixBytesCanonical(t *testing.T) {
	k := PrefixBytes(0x0102030405060708)
	if !bytes.Equal(k, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("PrefixBytes layout: got %x", k)
	}
	if got := (Prefix{}).Code([]byte("https://")); got != 0x68747470733a2f2f {
		t.Fatalf("Code(\"https://\") = %#x", got)
	}
}
