// Package dist generates the synthetic key distributions the paper's
// evaluation sorts (§6.2): uniform and gaussian baselines, skewed
// distributions that stress splitter determination, near-sorted and
// pre-partitioned inputs that defeat naive probing, and duplicate-heavy
// inputs that motivate the §4.3 tagging scheme.
//
// Generation is deterministic: Shard(perRank, rank, p, seed) depends only
// on its arguments, so every simulated processor can build its own shard
// independently and repeated runs reproduce byte-identical inputs.
package dist
