// Quickstart: sort 1M random 64-bit keys across 8 simulated processors
// with Histogram Sort with Sampling and print the metrics the paper
// reports — phase times, histogramming rounds, sample size, and the
// achieved load imbalance.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"slices"

	"hssort"
)

func main() {
	const procs = 8
	const perProc = 125_000

	// Each simulated processor starts with its own unsorted shard.
	shards := make([][]int64, procs)
	for r := range shards {
		rng := rand.New(rand.NewPCG(42, uint64(r)))
		shards[r] = make([]int64, perProc)
		for i := range shards[r] {
			shards[r][i] = rng.Int64()
		}
	}

	cfg := hssort.Config{
		Procs:   procs,
		Epsilon: 0.05, // every processor ends with <= N(1+ε)/p keys w.h.p.
	}
	out, stats, err := hssort.Sort(cfg, shards)
	if err != nil {
		log.Fatal(err)
	}

	// out[r] is processor r's slice of the global sorted order.
	for r := 1; r < procs; r++ {
		if len(out[r]) > 0 && len(out[r-1]) > 0 && out[r][0] < out[r-1][len(out[r-1])-1] {
			log.Fatal("rank boundaries out of order")
		}
		if !slices.IsSorted(out[r]) {
			log.Fatal("rank output not sorted")
		}
	}

	fmt.Printf("sorted %d keys on %d processors\n", stats.N, procs)
	fmt.Printf("  local sort:    %v\n", stats.LocalSort)
	fmt.Printf("  histogramming: %v  (%d rounds, %d sample keys)\n",
		stats.Splitter, stats.Rounds, stats.TotalSample)
	fmt.Printf("  data exchange: %v\n", stats.Exchange)
	fmt.Printf("  final merge:   %v\n", stats.Merge)
	fmt.Printf("  load imbalance: %.4f (target <= %.4f)\n", stats.Imbalance, 1+cfg.Epsilon)
}
