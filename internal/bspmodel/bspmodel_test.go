package bspmodel

import (
	"math"
	"testing"
	"testing/quick"
)

// TestTable51PaperNumbers pins the concrete sample sizes the paper quotes
// for p = 10^5, eps = 5%, N/p = 10^6, 8-byte keys (§1 and Table 5.1).
func TestTable51PaperNumbers(t *testing.T) {
	const p = 100000
	const eps = 0.05
	rows := Table51(p, 1e6, eps, 8)
	want := []struct {
		name   string
		bytes  float64
		within float64 // acceptable relative deviation (constants differ)
	}{
		{"regular", 1600e9, 0.05},
		{"random", 8.1e9, 0.15},
		{"HSS (1 round)", 184e6, 0.05},
		{"HSS (2 rounds)", 24e6, 0.05},
	}
	for i, w := range want {
		got := rows[i].SampleBytes
		if math.Abs(got-w.bytes)/w.bytes > w.within {
			t.Errorf("%s: %.3g bytes, paper says %.3g", w.name, got, w.bytes)
		}
	}
	// The log log p/eps row: paper quotes 10 MB; our constant gives ~12 MB.
	constant := rows[len(rows)-1].SampleBytes
	if constant < 5e6 || constant > 20e6 {
		t.Errorf("constant-oversampling row %.3g bytes, paper says ~10 MB", constant)
	}
}

func TestIntroExample(t *testing.T) {
	// §1: p = 64·10^3, eps = 0.05, 64-bit keys → 655 GB regular, 5 GB
	// random, 250 MB one-round, 22 MB two-round.
	p := 64000
	eps := 0.05
	n := float64(p) * 1e6
	if got := SampleSizeRegular(p, eps) * 8; math.Abs(got-655e9)/655e9 > 0.05 {
		t.Errorf("regular: %.3g, paper 655 GB", got)
	}
	if got := SampleSizeRandom(p, n, eps) * 8 / (eps * 1); got < 2e9 {
		// The paper's 5 GB folds slightly different constants; just pin
		// the order of magnitude of the raw formula.
		t.Logf("random raw: %.3g bytes", SampleSizeRandom(p, n, eps)*8)
	}
	// The §1 examples fold the constant 2 of Theorem 3.2.2 into the
	// sizes (250 MB, 22 MB) while Table 5.1's 184 MB / 24 MB do not; we
	// pin to Table 5.1's convention and accept the §1 numbers within
	// that factor.
	if got := SampleSizeHSS(p, eps, 1) * 8; got < 250e6/2.5 || got > 250e6*1.1 {
		t.Errorf("HSS-1: %.3g, paper ~250 MB", got)
	}
	if got := SampleSizeHSS(p, eps, 2) * 8; got < 22e6/2 || got > 22e6*1.2 {
		t.Errorf("HSS-2: %.3g, paper ~22 MB", got)
	}
}

func TestSampleSizeMonotonicInP(t *testing.T) {
	f := func(pRaw uint16) bool {
		p := int(pRaw%30000) + 4
		eps := 0.05
		return SampleSizeRegular(p, eps) < SampleSizeRegular(2*p, eps) &&
			SampleSizeHSS(p, eps, 2) < SampleSizeHSS(2*p, eps, 2) &&
			SampleSizeHSSConstant(p, eps) < SampleSizeHSSConstant(2*p, eps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHSSSampleDecreasesWithRounds(t *testing.T) {
	// More rounds → smaller total sample, down to the optimum.
	p, eps := 1<<16, 0.05
	kOpt := int(math.Round(OptimalRounds(p, eps)))
	prev := math.Inf(1)
	for k := 1; k <= kOpt; k++ {
		s := SampleSizeHSS(p, eps, k)
		if s >= prev {
			t.Errorf("k=%d: sample %.0f not below k=%d's %.0f", k, s, k-1, prev)
		}
		prev = s
	}
	// Past the optimum the k-linear factor wins: sample grows again.
	if SampleSizeHSS(p, eps, 4*kOpt) <= SampleSizeHSS(p, eps, kOpt) {
		t.Error("sample did not grow past the optimal round count")
	}
}

func TestFig41Ordering(t *testing.T) {
	// Fig 4.1: for large p, regular > random > HSS-1 > HSS-2 > constant.
	ps := []int{1 << 10, 1 << 14, 1 << 18}
	series := Fig41Series(ps, 1e6, 0.05)
	for i := range ps {
		reg := series["regular sampling"][i].Sample
		rnd := series["random sampling"][i].Sample
		h1 := series["HSS - 1 round"][i].Sample
		h2 := series["HSS - 2 rounds"][i].Sample
		hc := series["HSS - constant oversampling"][i].Sample
		if !(reg > rnd && rnd > h1 && h1 > h2 && h2 > hc) {
			t.Errorf("p=%d: ordering violated: %g %g %g %g %g", ps[i], reg, rnd, h1, h2, hc)
		}
	}
}

func TestOptimalRoundsFloor(t *testing.T) {
	if OptimalRounds(2, 10) != 1 {
		t.Error("OptimalRounds floor broken")
	}
}

func TestHSSCostDominatedByLocalWorkAtScale(t *testing.T) {
	// §6.2/§7: with the optimal round count and node-level partitioning
	// (the paper's production configuration: p = node count = 2048 for
	// a 32K-core Mira run), local sort + data movement dominate and the
	// histogram phase is a small fraction of the total.
	p := 2048
	k := int(math.Round(OptimalRounds(p, 0.02)))
	c := HSSCost(p, 1e6, 0.02, k, 1, 1)
	if c.Histogram > 0.2*c.Total() {
		t.Errorf("histogram %.3g is %.0f%% of total %.3g", c.Histogram,
			100*c.Histogram/c.Total(), c.Total())
	}
}

func TestSampleSortCostHistogramDominates(t *testing.T) {
	// Regular sampling at large p: the sample term dwarfs everything.
	p := 1 << 15
	s := SampleSizeRegular(p, 0.05)
	c := SampleSortCost(p, 1e4, s, 1, 1)
	if c.Histogram < c.LocalSort {
		t.Errorf("sample cost %.3g below local sort %.3g at p=%d", c.Histogram, c.LocalSort, p)
	}
}
