package merge

import (
	"cmp"
	"math/rand/v2"
	"slices"
	"testing"
	"testing/quick"
)

func intCmp(a, b int) int { return cmp.Compare(a, b) }

func TestTwoBasic(t *testing.T) {
	got := Two([]int{1, 3, 5}, []int{2, 4, 6}, intCmp)
	want := []int{1, 2, 3, 4, 5, 6}
	if !slices.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTwoEmpty(t *testing.T) {
	if got := Two(nil, []int{1}, intCmp); !slices.Equal(got, []int{1}) {
		t.Errorf("nil+[1] = %v", got)
	}
	if got := Two([]int{1}, nil, intCmp); !slices.Equal(got, []int{1}) {
		t.Errorf("[1]+nil = %v", got)
	}
	if got := Two[int](nil, nil, intCmp); len(got) != 0 {
		t.Errorf("nil+nil = %v", got)
	}
}

func TestTwoStable(t *testing.T) {
	type kv struct{ k, src int }
	a := []kv{{1, 0}, {2, 0}}
	b := []kv{{1, 1}, {2, 1}}
	got := Two(a, b, func(x, y kv) int { return cmp.Compare(x.k, y.k) })
	for i := 0; i < len(got)-1; i++ {
		if got[i].k == got[i+1].k && got[i].src > got[i+1].src {
			t.Fatalf("unstable merge at %d: %v", i, got)
		}
	}
}

func TestTwoProperty(t *testing.T) {
	f := func(a, b []int16) bool {
		as := make([]int, len(a))
		for i, v := range a {
			as[i] = int(v)
		}
		bs := make([]int, len(b))
		for i, v := range b {
			bs[i] = int(v)
		}
		slices.Sort(as)
		slices.Sort(bs)
		got := Two(as, bs, intCmp)
		want := append(append([]int{}, as...), bs...)
		slices.Sort(want)
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKWayEmptyInputs(t *testing.T) {
	if got := KWay[int](nil, intCmp); len(got) != 0 {
		t.Errorf("KWay(nil) = %v", got)
	}
	if got := KWay([][]int{{}, {}, {}}, intCmp); len(got) != 0 {
		t.Errorf("KWay(empties) = %v", got)
	}
	if got := KWay([][]int{{}, {4, 5}, {}}, intCmp); !slices.Equal(got, []int{4, 5}) {
		t.Errorf("KWay(one run) = %v", got)
	}
}

func TestKWaySingleRun(t *testing.T) {
	in := [][]int{{1, 2, 3}}
	got := KWay(in, intCmp)
	if !slices.Equal(got, []int{1, 2, 3}) {
		t.Errorf("got %v", got)
	}
	// Result must be a copy, not an alias.
	got[0] = 99
	if in[0][0] == 99 {
		t.Error("KWay aliased its input for the single-run case")
	}
}

func TestKWayKnown(t *testing.T) {
	runs := [][]int{
		{1, 5, 9},
		{2, 6, 10},
		{3, 7, 11},
		{4, 8, 12},
	}
	got := KWay(runs, intCmp)
	want := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if !slices.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestKWayDuplicatesAndUnequalLengths(t *testing.T) {
	runs := [][]int{
		{1, 1, 1, 1},
		{1},
		{},
		{0, 1, 2},
		{1, 1},
	}
	got := KWay(runs, intCmp)
	want := []int{0, 1, 1, 1, 1, 1, 1, 1, 1, 2}
	if !slices.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestKWayStableAcrossRuns(t *testing.T) {
	type kv struct{ k, src int }
	runs := [][]kv{
		{{5, 0}, {7, 0}},
		{{5, 1}},
		{{5, 2}, {6, 2}},
	}
	got := KWay(runs, func(x, y kv) int { return cmp.Compare(x.k, y.k) })
	var srcs []int
	for _, e := range got {
		if e.k == 5 {
			srcs = append(srcs, e.src)
		}
	}
	if !slices.Equal(srcs, []int{0, 1, 2}) {
		t.Errorf("tie order %v, want [0 1 2]", srcs)
	}
}

func TestKWayProperty(t *testing.T) {
	f := func(seedRaw uint32, kRaw uint8) bool {
		rng := rand.New(rand.NewPCG(uint64(seedRaw), 1))
		k := int(kRaw%17) + 1
		runs := make([][]int, k)
		var all []int
		for i := range runs {
			n := rng.IntN(50)
			runs[i] = make([]int, n)
			for j := range runs[i] {
				runs[i][j] = rng.IntN(100)
			}
			slices.Sort(runs[i])
			all = append(all, runs[i]...)
		}
		slices.Sort(all)
		return slices.Equal(KWay(runs, intCmp), all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLoserTreeStreaming(t *testing.T) {
	runs := [][]int{{2, 4}, {1, 3}}
	lt := NewLoserTree(runs, intCmp)
	var got []int
	for {
		k, ok := lt.Next()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if !slices.Equal(got, []int{1, 2, 3, 4}) {
		t.Errorf("got %v", got)
	}
	// Next after exhaustion stays exhausted.
	if _, ok := lt.Next(); ok {
		t.Error("Next returned ok after exhaustion")
	}
}

func TestLoserTreeManyRuns(t *testing.T) {
	// Non-power-of-two run count exercises the padded virtual leaves.
	const k = 13
	runs := make([][]int, k)
	for i := range runs {
		runs[i] = []int{i, i + k, i + 2*k}
	}
	got := KWay(runs, intCmp)
	if len(got) != 3*k {
		t.Fatalf("got %d keys, want %d", len(got), 3*k)
	}
	if !slices.IsSorted(got) {
		t.Error("output not sorted")
	}
}

func TestLoserTreeAllEmptyRuns(t *testing.T) {
	// Fixed form: every run empty from the start.
	lt := NewLoserTree([][]int{{}, {}, {}, {}, {}}, intCmp)
	if _, ok := lt.Next(); ok {
		t.Error("Next emitted from all-empty runs")
	}
	if !lt.Exhausted() {
		t.Error("all-empty fixed tree not Exhausted")
	}
	// Streaming form: runs added empty, then closed without data.
	st := NewStreaming[int](intCmp)
	for i := 0; i < 3; i++ {
		st.AddRun(nil)
	}
	if _, ok := st.NextReady(); ok {
		t.Error("NextReady emitted while all runs open and empty")
	}
	if st.Exhausted() {
		t.Error("open empty runs reported Exhausted")
	}
	for i := 0; i < 3; i++ {
		st.CloseRun(i)
	}
	if _, ok := st.NextReady(); ok {
		t.Error("NextReady emitted from closed empty runs")
	}
	if !st.Exhausted() {
		t.Error("closed empty runs not Exhausted")
	}
}

// TestLoserTreeAddRunStreaming drives the streaming API the way the
// exchange does: runs admitted up front, chunks appended out of lockstep,
// emission gated on starvation, runs closing at different times.
func TestLoserTreeAddRunStreaming(t *testing.T) {
	lt := NewStreaming[int](intCmp)
	a := lt.AddRun([]int{1, 4})
	b := lt.AddRun(nil)
	c := lt.AddRun([]int{3})
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("run indices %d %d %d", a, b, c)
	}
	// Run b is open and empty: nothing may be emitted yet.
	if _, ok := lt.NextReady(); ok {
		t.Fatal("emitted while run b starved")
	}
	lt.Append(b, []int{2})
	var got []int
	drain := func() {
		for {
			k, ok := lt.NextReady()
			if !ok {
				break
			}
			got = append(got, k)
		}
	}
	drain() // 1, 2 — then b starves again with 3, 4 still buffered
	if !slices.Equal(got, []int{1, 2}) {
		t.Fatalf("first drain got %v", got)
	}
	lt.Append(b, []int{5, 7})
	drain() // 3 only: run c drains and, still open, starves the tree
	if !slices.Equal(got, []int{1, 2, 3}) {
		t.Fatalf("second drain got %v", got)
	}
	lt.CloseRun(a)
	lt.CloseRun(c)
	drain() // 4, 5, 7 — then b starves again, still open
	if !slices.Equal(got, []int{1, 2, 3, 4, 5, 7}) {
		t.Fatalf("third drain got %v", got)
	}
	if lt.Exhausted() {
		t.Fatal("Exhausted with run b still open")
	}
	lt.Append(b, []int{9})
	lt.CloseRun(b)
	drain()
	if !slices.Equal(got, []int{1, 2, 3, 4, 5, 7, 9}) {
		t.Fatalf("final drain got %v", got)
	}
	if !lt.Exhausted() {
		t.Fatal("not Exhausted after final drain")
	}
	if lt.Consumed(b) != 4 {
		t.Errorf("Consumed(b) = %d, want 4", lt.Consumed(b))
	}
}

// TestLoserTreeStreamingNonPowerOfTwo checks tree growth across a
// non-power-of-two run count with interleaved emission and exhaustion,
// against a reference sort.
func TestLoserTreeStreamingNonPowerOfTwo(t *testing.T) {
	const k = 11 // forces leaf padding and one mid-stream tree regrowth
	rng := rand.New(rand.NewPCG(5, 6))
	chunks := make([][][]int, k)
	var all []int
	for i := range chunks {
		n := rng.IntN(40)
		keys := make([]int, n)
		for j := range keys {
			keys[j] = rng.IntN(50)
		}
		slices.Sort(keys)
		all = append(all, keys...)
		// Split each run into 1-3 chunks.
		for len(keys) > 0 {
			c := min(1+rng.IntN(20), len(keys))
			chunks[i] = append(chunks[i], keys[:c])
			keys = keys[c:]
		}
	}
	slices.Sort(all)
	lt := NewStreaming[int](intCmp)
	for i := 0; i < k; i++ {
		lt.AddRun(nil)
	}
	var got []int
	next := make([]int, k)
	for !lt.Exhausted() {
		// Feed one pending chunk to a random run, then drain.
		i := rng.IntN(k)
		for off := 0; off < k; off++ {
			r := (i + off) % k
			if next[r] < len(chunks[r]) {
				lt.Append(r, chunks[r][next[r]])
				next[r]++
				if next[r] == len(chunks[r]) {
					lt.CloseRun(r)
				}
				break
			} else if next[r] == len(chunks[r]) {
				lt.CloseRun(r) // covers zero-chunk runs; idempotent
			}
		}
		for {
			v, ok := lt.NextReady()
			if !ok {
				break
			}
			got = append(got, v)
		}
	}
	if !slices.Equal(got, all) {
		t.Fatalf("streamed merge diverged: got %d keys, want %d", len(got), len(all))
	}
}

// TestLoserTreeInterleavedExhaustion: Next keeps returning false after
// the fixed tree drains, and mid-merge run exhaustion is handled.
func TestLoserTreeInterleavedExhaustion(t *testing.T) {
	lt := NewLoserTree([][]int{{1}, {2, 3}, {}}, intCmp)
	want := []int{1, 2, 3}
	for _, w := range want {
		k, ok := lt.Next()
		if !ok || k != w {
			t.Fatalf("Next = %d,%v want %d", k, ok, w)
		}
	}
	for i := 0; i < 3; i++ {
		if _, ok := lt.Next(); ok {
			t.Fatal("Next emitted after exhaustion")
		}
	}
	if !lt.Exhausted() {
		t.Error("drained fixed tree not Exhausted")
	}
}

func BenchmarkKWay16(b *testing.B) {
	benchmarkKWay(b, 16)
}

func BenchmarkKWay256(b *testing.B) {
	benchmarkKWay(b, 256)
}

func benchmarkKWay(b *testing.B, k int) {
	rng := rand.New(rand.NewPCG(1, 2))
	runs := make([][]int64, k)
	per := 1 << 14 / k
	for i := range runs {
		runs[i] = make([]int64, per)
		for j := range runs[i] {
			runs[i][j] = rng.Int64()
		}
		slices.Sort(runs[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KWay(runs, func(a, c int64) int { return cmp.Compare(a, c) })
	}
}
