// Package exactsplit implements exact distributed splitter selection in
// the spirit of Cheng, Edelman, Gilbert & Shah (cited in §2.1): finding
// keys of *exact* global ranks — perfect load balance, ε = 0 — with
// O(log N) rounds of communication per batch of targets.
//
// The paper dismisses exact splitting as "largely of theoretical
// interest" because no application needs perfect balance; it is built
// here both as that reference point (the ε → 0 limit of the HSS
// trade-off, ablated in the benchmarks) and as a generally useful
// distributed multi-select primitive.
//
// The algorithm is parallel weighted-median selection: every unresolved
// target keeps a per-rank active window of the local sorted data; each
// round the ranks propose their window medians, the coordinator picks
// the weighted median of medians as a pivot (discarding ≥ 1/4 of the
// active keys per round), a histogram round ranks the pivot exactly,
// and windows narrow — until the pivot's span covers the target rank.
package exactsplit
