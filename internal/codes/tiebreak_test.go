package codes

import (
	"bytes"
	"math/rand/v2"
	"slices"
	"testing"

	"hssort/internal/keycoder"
	"hssort/internal/par"
)

// randomKeys produces byte keys with a controllable collision rate:
// prefixBytes of shared prefix followed by random tails.
func randomKeys(n, prefixBytes int, seed uint64) [][]byte {
	rng := rand.New(rand.NewPCG(seed, 42))
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, prefixBytes+4+int(rng.Uint64()%8))
		for j := prefixBytes; j < len(k); j++ {
			k[j] = byte(rng.Uint64())
		}
		keys[i] = k
	}
	return keys
}

func TestTieBreakRestoresOrder(t *testing.T) {
	for _, prefix := range []int{0, 4, 8, 12} {
		keys := randomKeys(5000, prefix, uint64(prefix)+1)
		want := slices.Clone(keys)
		slices.SortFunc(want, bytes.Compare)

		cs := SortByCode(keys, keycoder.Prefix{}.Code)
		collisions := TieBreak(cs, keys, bytes.Compare)
		if !slices.EqualFunc(keys, want, bytes.Equal) {
			t.Fatalf("prefix=%d: TieBreak did not restore comparator order", prefix)
		}
		if prefix >= 8 && collisions != int64(len(keys)) {
			t.Fatalf("prefix=%d: want every key counted as collision, got %d", prefix, collisions)
		}
		if prefix == 0 && collisions > int64(len(keys))/10 {
			t.Fatalf("prefix=%d: unexpectedly many collisions: %d", prefix, collisions)
		}
	}
}

func TestTieBreakParMatchesSerial(t *testing.T) {
	for _, prefix := range []int{0, 6, 8} {
		for _, workers := range []int{1, 2, 3, 8} {
			keys := randomKeys(50000, prefix, uint64(prefix)*7+uint64(workers))
			serialKeys := slices.Clone(keys)

			cs := SortByCode(keys, keycoder.Prefix{}.Code)
			serialCs := slices.Clone(cs)
			copy(serialKeys, keys)

			wantCollisions := TieBreak(serialCs, serialKeys, bytes.Compare)
			gotCollisions := TieBreakPar(cs, keys, bytes.Compare, par.New(workers))
			if gotCollisions != wantCollisions {
				t.Fatalf("prefix=%d workers=%d: collision count %d != serial %d",
					prefix, workers, gotCollisions, wantCollisions)
			}
			if !slices.EqualFunc(keys, serialKeys, bytes.Equal) {
				t.Fatalf("prefix=%d workers=%d: parallel output diverges from serial", prefix, workers)
			}
		}
	}
}

func TestTieBreakEmptyAndSingleton(t *testing.T) {
	if got := TieBreak(nil, nil, func(a, b int) int { return a - b }); got != 0 {
		t.Fatalf("empty: %d collisions", got)
	}
	if got := TieBreak([]Code{7}, []int{1}, func(a, b int) int { return a - b }); got != 0 {
		t.Fatalf("singleton: %d collisions", got)
	}
}
