package exchange

// The parallel partition scan: the splitter sequence is cut into
// contiguous sub-ranges, one fork-join task each, and every task chains
// lower-bound searches through its sub-range exactly as the serial scan
// chains through the whole sequence. A cut is the unique lower bound of
// its splitter in the sorted input, so the strategy — serial forward
// scan, serial chained searches, or parallel sub-range scans — cannot
// change a single offset: PartitionPar and PartitionByCodePar are
// bit-identical to their serial forms for every worker count.

import (
	"sort"

	"hssort/internal/codes"
	"hssort/internal/par"
)

// partitionParKeys is the input length below which the parallel
// partition hands to the serial scan: the cut work is O(B log n) at
// most, so small inputs never repay the fork-join.
const partitionParKeys = 1 << 14

// PartitionPar is Partition with the cut searches fanned over the pool
// in contiguous splitter sub-ranges. Output is identical to Partition
// for any worker count; the returned runs alias the input.
func PartitionPar[K any](sorted []K, splitters []K, cmp func(K, K) int, p *par.Pool) [][]K {
	if p.Workers() == 1 || len(splitters) < 2 || len(sorted) < partitionParKeys {
		return Partition(sorted, splitters, cmp)
	}
	if Debug {
		ValidateSplitters(splitters, cmp)
	}
	cuts := make([]int, len(splitters))
	blocks := par.Blocks(len(splitters), p.Workers())
	p.Do(len(blocks), func(i int) {
		prev := 0
		for j := blocks[i].Lo; j < blocks[i].Hi; j++ {
			s := splitters[j]
			prev += sort.Search(len(sorted)-prev, func(k int) bool {
				return cmp(sorted[prev+k], s) >= 0
			})
			cuts[j] = prev
		}
	})
	return runsAt(sorted, cuts)
}

// PartitionByCodePar is PartitionByCode with the cut searches fanned
// over the pool in contiguous splitter sub-ranges. Output is identical
// to PartitionByCode for any worker count.
func PartitionByCodePar[K any](sorted []K, cs []codes.Code, splitterCodes []codes.Code, p *par.Pool) [][]K {
	if p.Workers() == 1 || len(splitterCodes) < 2 || len(sorted) < partitionParKeys {
		return PartitionByCode(sorted, cs, splitterCodes)
	}
	if len(sorted) != len(cs) {
		panic("exchange: code array length mismatch")
	}
	if Debug {
		ValidateSplitters(splitterCodes, codes.Compare)
	}
	cuts := make([]int, len(splitterCodes))
	blocks := par.Blocks(len(splitterCodes), p.Workers())
	p.Do(len(blocks), func(i int) {
		prev := 0
		for j := blocks[i].Lo; j < blocks[i].Hi; j++ {
			prev += codes.Rank(cs[prev:], splitterCodes[j])
			cuts[j] = prev
		}
	})
	return runsAt(sorted, cuts)
}

// runsAt slices sorted at the non-decreasing cut offsets into
// len(cuts)+1 runs.
func runsAt[K any](sorted []K, cuts []int) [][]K {
	runs := make([][]K, len(cuts)+1)
	prev := 0
	for i, cut := range cuts {
		runs[i] = sorted[prev:cut]
		prev = cut
	}
	runs[len(cuts)] = sorted[prev:]
	return runs
}
