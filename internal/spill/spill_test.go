package spill

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"hssort/internal/codes"
	"hssort/internal/merge"
)

func newTestManager(t *testing.T, budget int64) *Manager {
	t.Helper()
	m, err := NewManager(budget, t.TempDir(), 0)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func readAll[K any](t *testing.T, rd *RunReader[K]) []K {
	t.Helper()
	var out []K
	for {
		chunk, err := rd.NextChunk()
		if err != nil {
			t.Fatalf("NextChunk: %v", err)
		}
		if chunk == nil {
			return out
		}
		out = append(out, chunk...)
	}
}

func TestRoundTripCodes(t *testing.T) {
	m := newTestManager(t, 1<<20)
	rng := rand.New(rand.NewSource(7))
	keys := make([]codes.Code, 10_000)
	for i := range keys {
		keys[i] = codes.Code(rng.Uint64() >> 20) // clustered so delta+flate engage
	}
	slices.Sort(keys)
	w, err := NewWriter[codes.Code](m, 777)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteKeys(keys); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if run.Keys() != int64(len(keys)) {
		t.Fatalf("run.Keys() = %d, want %d", run.Keys(), len(keys))
	}
	rd, err := run.Reader(true)
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, rd)
	if !slices.Equal(got, keys) {
		t.Fatalf("round trip mismatch: got %d keys", len(got))
	}
	if _, err := os.Stat(run.Path()); !os.IsNotExist(err) {
		t.Fatalf("run file not removed at EOF: %v", err)
	}
	st := m.TakeStats()
	if st.SpilledBytes != int64(len(keys))*8 {
		t.Fatalf("SpilledBytes = %d, want %d", st.SpilledBytes, len(keys)*8)
	}
	if st.FileBytes <= 0 || st.FileBytes >= st.SpilledBytes {
		t.Fatalf("expected compression on sorted codes: file=%d spilled=%d", st.FileBytes, st.SpilledBytes)
	}
	if st.Reads == 0 {
		t.Fatal("no frame reads recorded")
	}
}

type record struct {
	A uint64
	B int32
	C [3]byte
}

func TestRoundTripRawRecords(t *testing.T) {
	m := newTestManager(t, 1<<20)
	rng := rand.New(rand.NewSource(11))
	keys := make([]record, 4_321)
	for i := range keys {
		keys[i] = record{A: rng.Uint64(), B: int32(rng.Int31()), C: [3]byte{byte(i), byte(i >> 8), 7}}
	}
	w, err := NewWriter[record](m, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Split across several WriteKeys calls: the run is the concatenation.
	if err := w.WriteKeys(keys[:1000]); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteKeys(keys[1000:]); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := run.Reader(true)
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, rd); !slices.Equal(got, keys) {
		t.Fatalf("round trip mismatch: got %d keys, want %d", len(got), len(keys))
	}
}

func TestEmptyRun(t *testing.T) {
	m := newTestManager(t, 1<<20)
	w, err := NewWriter[int64](m, 128)
	if err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := run.Reader(true)
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, rd); len(got) != 0 {
		t.Fatalf("empty run yielded %d keys", len(got))
	}
}

func TestCorruptionDetected(t *testing.T) {
	m := newTestManager(t, 1<<20)
	keys := make([]codes.Code, 5_000)
	for i := range keys {
		keys[i] = codes.Code(i * 3)
	}
	w, err := NewWriter[codes.Code](m, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteKeys(keys); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(run.Path())
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "corrupt.spill")
			if err := os.WriteFile(path, mutate(slices.Clone(orig)), 0o644); err != nil {
				t.Fatal(err)
			}
			rd, err := OpenRun[codes.Code](m, path, false)
			if err == nil {
				var got []codes.Code
				for err == nil {
					var chunk []codes.Code
					chunk, err = rd.NextChunk()
					if err == nil && chunk == nil {
						break
					}
					got = append(got, chunk...)
				}
				rd.Close()
				if err == nil && !slices.Equal(got, keys) {
					t.Fatalf("corrupt file decoded to %d garbage keys without error", len(got))
				}
				if err == nil {
					return // mutation did not damage the decoded stream
				}
			}
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("error is %T (%v), want *spill.Error", err, err)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error does not wrap ErrCorrupt: %v", err)
			}
		})
	}
	check("bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	check("payload-bit-flip", func(b []byte) []byte { b[len(runMagic)+frameHeaderBytes+5] ^= 0x10; return b })
	check("header-flag-flip", func(b []byte) []byte { b[len(runMagic)+8] ^= flagFlate; return b })
	check("count-flip", func(b []byte) []byte { b[len(runMagic)+4] ^= 1; return b })
	check("truncated-mid-frame", func(b []byte) []byte { return b[:len(runMagic)+frameHeaderBytes+3] })
	check("missing-final-marker", func(b []byte) []byte { return b[:len(b)-frameHeaderBytes] })
}

func TestManagerBudgetAndStats(t *testing.T) {
	m := newTestManager(t, 1000)
	if m.WouldExceed(1000) {
		t.Fatal("WouldExceed(budget) on empty manager")
	}
	m.Acquire(800)
	if !m.WouldExceed(300) {
		t.Fatal("WouldExceed missed overflow")
	}
	m.Acquire(100)
	m.Release(900)
	st := m.TakeStats()
	if st.PeakResident != 900 {
		t.Fatalf("PeakResident = %d, want 900", st.PeakResident)
	}
	if st2 := m.TakeStats(); st2.PeakResident != 0 {
		t.Fatal("TakeStats did not reset counters")
	}
	if m.Budget() != 1000 {
		t.Fatalf("Budget = %d", m.Budget())
	}
	var nilM *Manager
	if nilM.Budget() != 0 || nilM.TakeStats() != (Stats{}) || nilM.Reset() != nil || nilM.Close() != nil {
		t.Fatal("nil Manager methods not nil-safe")
	}
}

func TestManagerResetRemovesOrphans(t *testing.T) {
	m := newTestManager(t, 1<<20)
	w, err := NewWriter[int64](m, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteKeys([]int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m.Acquire(500)
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(run.Path()); !os.IsNotExist(err) {
		t.Fatal("Reset left an orphaned run file")
	}
	ents, err := os.ReadDir(m.Dir())
	if err != nil || len(ents) != 0 {
		t.Fatalf("spill dir not empty after Reset: %v %d", err, len(ents))
	}
}

func TestManagerClaimsPerRankDir(t *testing.T) {
	base := t.TempDir()
	m1, err := NewManager(1<<20, base, 3)
	if err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(m1.Dir(), "run-999999.spill")
	if err := os.WriteFile(orphan, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A respawned rank 3 wipes its crashed predecessor's leftovers…
	m2, err := NewManager(1<<20, base, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("respawn did not wipe predecessor's spill dir")
	}
	// …while another rank's directory is untouched.
	m4, err := NewManager(1<<20, base, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer m4.Close()
	if m4.Dir() == m2.Dir() {
		t.Fatal("ranks share a spill dir")
	}
}

func TestSpillable(t *testing.T) {
	type podKV struct {
		K uint64
		V [16]byte
	}
	type ptrKV struct {
		K uint64
		V *int
	}
	for _, tc := range []struct {
		name string
		got  bool
		want bool
	}{
		{"int64", Spillable[int64](), true},
		{"code", Spillable[codes.Code](), true},
		{"podKV", Spillable[podKV](), true},
		{"string", Spillable[string](), false},
		{"byteslice", Spillable[[]byte](), false},
		{"ptrKV", Spillable[ptrKV](), false},
	} {
		if tc.got != tc.want {
			t.Errorf("Spillable[%s] = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

func TestLocalSortSpillsAndMatches(t *testing.T) {
	for _, plane := range []string{"code", "cmp"} {
		t.Run(plane, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			local := make([]codes.Code, 50_000)
			for i := range local {
				local[i] = codes.Code(rng.Uint64())
			}
			want := slices.Clone(local)
			slices.Sort(want)
			budget := int64(len(local)) * 8 / 4 // shard is 4× budget
			m := newTestManager(t, budget)
			var code func(codes.Code) uint64
			if plane == "code" {
				code = codes.ExtractCode
			}
			cs, err := LocalSort(m, local, code, codes.Compare, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(local, want) {
				t.Fatal("spilled local sort output differs from in-memory sort")
			}
			if plane == "code" {
				if len(cs) != len(local) {
					t.Fatalf("got %d codes for %d keys", len(cs), len(local))
				}
				for i := range cs {
					if cs[i] != local[i] {
						t.Fatalf("code %d mismatch", i)
					}
				}
			} else if cs != nil {
				t.Fatal("comparator plane returned codes")
			}
			st := m.TakeStats()
			if st.SpilledBytes == 0 {
				t.Fatal("budgeted local sort did not spill")
			}
			if st.PeakResident > budget {
				t.Fatalf("PeakResident %d over budget %d", st.PeakResident, budget)
			}
			ents, err := os.ReadDir(m.Dir())
			if err != nil || len(ents) != 0 {
				t.Fatalf("run files leaked after merge: %v %d", err, len(ents))
			}
		})
	}
}

func TestLocalSortInMemoryUnderBudget(t *testing.T) {
	m := newTestManager(t, 1<<30)
	local := []codes.Code{5, 3, 9, 1}
	cs, err := LocalSort(m, local, codes.ExtractCode, codes.Compare, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.IsSorted(local) || len(cs) != 4 {
		t.Fatal("in-memory path broken")
	}
	if st := m.TakeStats(); st.SpilledBytes != 0 {
		t.Fatal("under-budget sort spilled")
	}
}

func TestFromSourcesMergesRunReaders(t *testing.T) {
	m := newTestManager(t, 1<<20)
	rng := rand.New(rand.NewSource(3))
	var runs []*Run[codes.Code]
	var all []codes.Code
	for r := 0; r < 5; r++ {
		keys := make([]codes.Code, 1000+r*300)
		for i := range keys {
			keys[i] = codes.Code(rng.Uint64() % 5000) // plenty of cross-run duplicates
		}
		slices.Sort(keys)
		all = append(all, keys...)
		w, err := NewWriter[codes.Code](m, 200)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteKeys(keys); err != nil {
			t.Fatal(err)
		}
		run, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run)
	}
	srcs := make([]merge.Source[codes.Code], len(runs))
	for i, run := range runs {
		rd, err := run.Reader(true)
		if err != nil {
			t.Fatal(err)
		}
		srcs[i] = rd
	}
	st := merge.NewStreamer[codes.Code](codes.Compare, codes.ExtractCode)
	out, err := merge.FromSources(st, srcs, m, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	slices.Sort(all)
	if !slices.Equal(out, all) {
		t.Fatalf("merged %d keys, mismatch vs %d expected", len(out), len(all))
	}
}

func TestWriterAbortRemovesFile(t *testing.T) {
	m := newTestManager(t, 1<<20)
	w, err := NewWriter[int64](m, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteKeys([]int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	path := w.Path()
	w.Abort()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("Abort left the run file behind")
	}
	if err := w.WriteKeys([]int64{4}); err == nil {
		t.Fatal("WriteKeys after Abort did not fail")
	}
}
