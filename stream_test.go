package hssort

import (
	"slices"
	"testing"

	"hssort/internal/comm"
	"hssort/internal/dist"
	"hssort/internal/exchange"
	"hssort/internal/tagging"
)

// TestStreamExchangeEquivalence is the streaming pipeline's acceptance
// gate: for every supported algorithm, on both transports, a sort run
// with Config.StreamExchange must produce rank-identical output to the
// materializing path — and its peak in-flight volume must stay within
// the flow-control budget (p-1)·window·ChunkKeys·keysize.
func TestStreamExchangeEquivalence(t *testing.T) {
	const p, perRank = 8, 4000
	const chunkKeys = 512 // well below perRank so every rank really streams
	cases := []struct {
		name string
		cfg  Config
		kind dist.Kind
	}{
		{"hss", Config{Procs: p, Algorithm: HSS, Epsilon: 0.05, Seed: 3}, dist.PowerSkew},
		{"hss-overpartition", Config{Procs: p, Algorithm: HSS, Buckets: 4 * p, Epsilon: 0.1, Seed: 5}, dist.Uniform},
		{"hss-roundrobin", Config{Procs: p, Algorithm: HSS, Buckets: 2 * p, RoundRobinBuckets: true, Epsilon: 0.1, Seed: 5}, dist.Gaussian},
		{"samplesort-regular", Config{Procs: p, Algorithm: SampleSortRegular, Epsilon: 0.1, Seed: 7}, dist.Uniform},
		{"samplesort-random", Config{Procs: p, Algorithm: SampleSortRandom, Epsilon: 0.1, Seed: 7}, dist.Exponential},
		{"histogramsort", Config{Procs: p, Algorithm: HistogramSort, Epsilon: 0.1, Seed: 9}, dist.Uniform},
		{"node-hss", Config{Procs: p, Algorithm: NodeHSS, CoresPerNode: 2, Epsilon: 0.1, Seed: 11}, dist.Uniform},
		{"hss-duplicates", Config{Procs: p, Algorithm: HSS, Epsilon: 0.1, TagDuplicates: true, Seed: 13}, dist.DuplicateHeavy},
	}
	for _, tc := range cases {
		for _, tr := range []Transport{TransportSim, TransportInproc} {
			t.Run(tc.name+"/"+tr.String(), func(t *testing.T) {
				shards := dist.Spec{Kind: tc.kind, Min: 0, Max: 1 << 40, Distinct: 64}.Shards(perRank, p, 33)

				matCfg := tc.cfg
				matCfg.Transport = tr
				matOuts, _, err := Sort(matCfg, cloneShards(shards))
				if err != nil {
					t.Fatalf("materializing: %v", err)
				}

				strCfg := tc.cfg
				strCfg.Transport = tr
				strCfg.StreamExchange = true
				strCfg.ChunkKeys = chunkKeys
				strOuts, strStats, err := Sort(strCfg, cloneShards(shards))
				if err != nil {
					t.Fatalf("streaming: %v", err)
				}

				for r := range matOuts {
					if !slices.Equal(matOuts[r], strOuts[r]) {
						t.Fatalf("rank %d: streaming output differs from materializing path (%d vs %d keys)",
							r, len(strOuts[r]), len(matOuts[r]))
					}
				}
				keySize := comm.SizeOf[int64]()
				if tc.cfg.TagDuplicates {
					keySize = comm.SizeOf[tagging.Tagged[int64]]()
				}
				budget := int64(p-1) * exchange.DefaultStreamWindow * chunkKeys * keySize
				if strStats.PeakInFlightBytes > budget {
					t.Errorf("peak in-flight %d bytes exceeds budget %d", strStats.PeakInFlightBytes, budget)
				}
				if strStats.PeakInFlightBytes == 0 {
					t.Error("streaming run reported zero peak in-flight bytes")
				}
			})
		}
	}
}

// TestStreamExchangeUnsupported: algorithms without a streaming data
// plane reject the option instead of silently ignoring it.
func TestStreamExchangeUnsupported(t *testing.T) {
	shards := dist.Spec{Kind: dist.Uniform}.Shards(64, 4, 1)
	for _, alg := range []Algorithm{Bitonic, Radix, OverPartition} {
		cfg := Config{Procs: 4, Algorithm: alg, StreamExchange: true, Seed: 1}
		if _, _, err := Sort(cfg, cloneShards(shards)); err == nil {
			t.Errorf("%v accepted StreamExchange", alg)
		}
	}
}

// TestStreamExchangeStats: the streaming path populates the overlap and
// in-flight fields and the materializing path leaves them zero.
func TestStreamExchangeStats(t *testing.T) {
	const p, perRank = 4, 20000
	shards := dist.Spec{Kind: dist.Uniform}.Shards(perRank, p, 9)
	_, matStats, err := Sort(Config{Procs: p, Epsilon: 0.1, Seed: 3}, cloneShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	if matStats.ExchangeOverlap != 0 || matStats.PeakInFlightBytes != 0 {
		t.Errorf("materializing path reported streaming stats: overlap %v, in-flight %d",
			matStats.ExchangeOverlap, matStats.PeakInFlightBytes)
	}
	_, strStats, err := Sort(Config{Procs: p, Epsilon: 0.1, Seed: 3, StreamExchange: true, ChunkKeys: 1024}, cloneShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	if strStats.PeakInFlightBytes == 0 {
		t.Error("streaming path reported zero peak in-flight bytes")
	}
	if strStats.N != matStats.N || strStats.Imbalance != matStats.Imbalance {
		t.Errorf("protocol stats diverged: N %d vs %d, imbalance %v vs %v",
			strStats.N, matStats.N, strStats.Imbalance, matStats.Imbalance)
	}
}
