package tablefmt

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("rule: %q", lines[1])
	}
	// The value column starts at the same offset in every row.
	off := strings.Index(lines[2], "1")
	if strings.Index(lines[3], "22") != off {
		t.Errorf("columns unaligned:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := New("a")
	tb.AddRow("x", "extra")
	tb.AddRow()
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Errorf("extra cell dropped:\n%s", out)
	}
}

func TestBytes(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{500, "500 B"},
		{1600e9, "1.6 TB"}, // the paper writes "1600 GB"; same quantity
		{900e9, "900 GB"},
		{184e6, "184 MB"},
		{8.1e9, "8.1 GB"},
		{2.5e12, "2.5 TB"},
		{1024, "1.024 KB"},
	}
	for _, c := range cases {
		if got := Bytes(c.in); got != c.want {
			t.Errorf("Bytes(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCount(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{12, "12"},
		{4000, "4K"},
		{2.5e6, "2.5M"},
		{64e9, "64B"},
	}
	for _, c := range cases {
		if got := Count(c.in); got != c.want {
			t.Errorf("Count(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}
