package exchange

import (
	"cmp"
	"slices"
	"testing"
	"time"

	"hssort/internal/comm"
	"hssort/internal/keycoder"
)

// scratchShards builds p deterministic sorted shards.
func scratchShards(p, perRank int, seed int64) [][]int64 {
	shards := make([][]int64, p)
	v := seed
	for r := range shards {
		for i := 0; i < perRank; i++ {
			v = v*6364136223846793005 + 1442695040888963407
			shards[r] = append(shards[r], v>>20)
		}
		slices.Sort(shards[r])
	}
	return shards
}

// TestScratchReuseEquivalence: one Scratch per rank, reused across
// several streaming exchanges (including a plane switch between the
// comparator and code-keyed merge), produces output identical to the
// scratch-free path every time. Scratch release happens only after all
// ranks joined — the contract the engine follows.
func TestScratchReuseEquivalence(t *testing.T) {
	const p, perRank, rounds = 4, 3000, 4
	icmp := cmp.Compare[int64]
	splitters := []int64{-1 << 41, 0, 1 << 41}
	owner := func(b int) int { return b }
	opt := StreamOptions{ChunkKeys: 256}
	code := func(k int64) uint64 { return keycoder.Int64{}.Encode(k) }

	scratches := make([]*Scratch[int64], p)
	for r := range scratches {
		scratches[r] = &Scratch[int64]{}
	}
	for round := 0; round < rounds; round++ {
		shards := scratchShards(p, perRank, int64(round+1))
		// Alternate merge planes to exercise the cached-streamer swap.
		var extractor func(int64) uint64
		if round%2 == 1 {
			extractor = code
		}

		run := func(sc func(r int) *Scratch[int64]) [][]int64 {
			outs := make([][]int64, p)
			w := comm.NewWorld(p, comm.WithTimeout(10*time.Second))
			err := w.Run(func(c *comm.Comm) error {
				runs := Partition(slices.Clone(shards[c.Rank()]), splitters, icmp)
				out, _, err := ExchangeStream(c, 1, runs, owner, icmp, extractor, opt, sc(c.Rank()))
				outs[c.Rank()] = out
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			return outs
		}
		want := run(func(int) *Scratch[int64] { return nil })
		got := run(func(r int) *Scratch[int64] { return scratches[r] })
		for r := range want {
			if !slices.Equal(want[r], got[r]) {
				t.Fatalf("round %d rank %d: scratch output differs (%d vs %d keys)",
					round, r, len(got[r]), len(want[r]))
			}
		}
		// All ranks joined: releasing is now safe, as the engine does.
		for _, sc := range scratches {
			sc.Release()
		}
	}
}

// TestRunsImbalance: the pre-exchange staleness probe reports the exact
// bucket-level imbalance on every rank.
func TestRunsImbalance(t *testing.T) {
	const p = 3
	// Global bucket loads: 3+0+1=4, 1+2+0=3, 0+1+1=2 → max 4, N 9,
	// B 3 → imbalance 4·3/9.
	runsByRank := [][][]int64{
		{{1, 2, 3}, {10}, {}},
		{{}, {11, 12}, {20}},
		{{4}, {}, {21}},
	}
	want := 4.0 * 3 / 9
	w := comm.NewWorld(p, comm.WithTimeout(10*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		imb, total, err := RunsImbalance(c, 5, runsByRank[c.Rank()])
		if err != nil {
			return err
		}
		if total != 9 {
			t.Errorf("rank %d: total = %d, want 9", c.Rank(), total)
		}
		if imb != want {
			t.Errorf("rank %d: imbalance = %v, want %v", c.Rank(), imb, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
