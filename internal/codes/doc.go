// Package codes is the comparator-free code-space compute plane. Every
// hot loop of the sort pipelines — local sort, partition cuts, histogram
// rank scans, k-way merges — can run on raw uint64 comparisons instead of
// Go comparator-closure calls whenever the key type admits an
// order-preserving uint64 bijection (internal/keycoder) or, for
// payload-carrying records, an order-preserving code extractor.
//
// The package defines the Code point type and the branch-predictable
// kernels over code slices: an in-place MSD radix sort (with a tandem
// variant that drags record payloads along, the decorate-sort-undecorate
// plane for KV data), branch-free binary-search ranks, partition cut
// computation, and the comparator tie-break pass for the prefix plane.
//
// # The Code invariant
//
// Code is a distinct named type rather than a bare uint64 on purpose:
// only this package and the keycoder bijections ever produce []Code, and
// they produce it exclusively in natural unsigned order-correspondence
// with the comparator of the keys it encodes. A generic function that
// discovers its []K is actually a []Code may therefore switch to direct
// `<` comparisons without consulting its comparator — the localized
// type-sniffing fast paths in EncodeSlice/DecodeSlice/SortByCode and in
// internal/histogram rely on exactly this. User-supplied key types can
// never be []Code (the package is internal), so the sniff cannot
// misfire on a caller's custom comparator.
//
// # The prefix plane
//
// Bijective and record extractors satisfy the strong invariant
// cmp(a, b) == 0 ⇔ code(a) == code(b), so code order fully determines
// element order. A prefix extractor (keycoder.Prefix over []byte keys)
// satisfies only cmp(a, b) < 0 ⟹ code(a) <= code(b): equal codes may
// hide unequal keys. On that plane the radix kernels still do the heavy
// lifting, but every equal-code span must afterwards be re-sorted with
// the comparator — TieBreak/TieBreakPar — and every k-way merge must
// consult the comparator on code collisions (internal/merge's tie-aware
// trees). Partition cuts need no repair: Cuts places boundaries between
// codes, so an equal-code (hence comparator-contiguous) group is never
// split across buckets.
package codes
