package main

import (
	"fmt"

	"hssort/internal/bspmodel"
	"hssort/internal/tablefmt"
)

// runTable51 regenerates Table 5.1: per-algorithm asymptotic costs and
// the concrete overall sample sizes for p = 10^5, eps = 5%, N/p = 10^6,
// 8-byte keys (the paper quotes 1600 GB / 8.1 GB / 184 MB / 24 MB /
// 10 MB).
func runTable51(scale float64) error {
	_ = scale // the table is analytic; scale does not apply
	const p = 100000
	const eps = 0.05
	rows := bspmodel.Table51(p, 1e6, eps, 8)
	t := tablefmt.New("algorithm", "overall sample", "sample @ p=1e5, eps=5%", "computation", "communication")
	for _, r := range rows {
		t.AddRow(
			r.Algorithm,
			tablefmt.Count(r.SampleKeys)+" keys",
			tablefmt.Bytes(r.SampleBytes),
			r.Computation,
			r.Communication,
		)
	}
	fmt.Print(t.String())
	fmt.Println("\nPaper (Table 5.1): 1600 GB regular / 8.1 GB random / 184 MB HSS-1 /")
	fmt.Println("24 MB HSS-2 / 10 MB HSS log log rounds. Shared terms: local sort")
	fmt.Println("N/p log(N/p), data movement N/p, final merge N/p log p.")
	return nil
}
