package bspmodel

import (
	"fmt"
	"math"
)

// SampleSizeRegular returns the overall sample size (keys) for sample
// sort with regular sampling at oversampling ratio p/ε: Θ(p²/ε)
// (Lemma 4.1.1).
func SampleSizeRegular(p int, eps float64) float64 {
	return float64(p) * float64(p) / eps
}

// SampleSizeRandom returns the overall sample size (keys) for sample sort
// with random sampling: Θ(p log N/ε²) (§4.1.1, Theorem 4.1.1).
func SampleSizeRandom(p int, n float64, eps float64) float64 {
	if n < 2 {
		n = 2
	}
	return float64(p) * math.Log(n) / (eps * eps)
}

// SampleSizeHSS returns the overall sample size (keys) for HSS with k
// rounds: k·p·(ln p/ε)^(1/k) (Lemma 3.3.1; k=1 recovers the one-round
// O(p log p/ε) bound of Lemma 3.2.1).
func SampleSizeHSS(p int, eps float64, k int) float64 {
	if k < 1 {
		k = 1
	}
	if p < 2 {
		p = 2
	}
	return float64(k) * float64(p) * math.Pow(math.Log(float64(p))/eps, 1/float64(k))
}

// OptimalRounds returns k* = ln(ln p/ε), the round count minimizing the
// total HSS sample (§3.3).
func OptimalRounds(p int, eps float64) float64 {
	if p < 2 {
		p = 2
	}
	k := math.Log(math.Log(float64(p)) / eps)
	if k < 1 {
		return 1
	}
	return k
}

// SampleSizeHSSConstant returns the overall sample size at the optimal
// round count: k*·e·p keys — O(p log log p/ε) with constant per-round
// oversampling (Lemma 3.3.2).
func SampleSizeHSSConstant(p int, eps float64) float64 {
	return OptimalRounds(p, eps) * math.E * float64(p)
}

// Row is one algorithm's entry in Table 5.1.
type Row struct {
	// Algorithm is the display name.
	Algorithm string
	// SampleKeys is the overall sample size in keys; SampleBytes in
	// bytes at the configured key width.
	SampleKeys  float64
	SampleBytes float64
	// Computation and Communication are the asymptotic cost
	// expressions from Table 5.1 (display strings).
	Computation   string
	Communication string
}

// Table51 reproduces Table 5.1 for the given configuration: p processors,
// nPerProc keys per processor, imbalance threshold eps, keyBytes bytes
// per key.
func Table51(p int, nPerProc float64, eps float64, keyBytes int) []Row {
	n := float64(p) * nPerProc
	kOpt := OptimalRounds(p, eps)
	rows := []Row{
		{
			Algorithm:     "Sample sort (regular sampling)",
			SampleKeys:    SampleSizeRegular(p, eps),
			Computation:   "N/p log(N/p) + p^2/eps log p + N/p log p",
			Communication: "p^2/eps + p + N/p",
		},
		{
			Algorithm:     "Sample sort (random sampling)",
			SampleKeys:    SampleSizeRandom(p, n, eps),
			Computation:   "N/p log(N/p) + p logN logp /eps^2 + N/p log p",
			Communication: "p logN/eps^2 + p + N/p",
		},
		{
			Algorithm:     "HSS (1 round)",
			SampleKeys:    SampleSizeHSS(p, eps, 1),
			Computation:   "N/p log(N/p) + p log p/eps logN + N/p log p",
			Communication: "p log p/eps + p + N/p",
		},
		{
			Algorithm:     "HSS (2 rounds)",
			SampleKeys:    SampleSizeHSS(p, eps, 2),
			Computation:   "N/p log(N/p) + p sqrt(log p/eps) logN + N/p log p",
			Communication: "p sqrt(log p/eps) + p + N/p",
		},
		{
			Algorithm:     fmt.Sprintf("HSS (k=%d rounds)", int(math.Round(kOpt))),
			SampleKeys:    SampleSizeHSS(p, eps, int(math.Round(kOpt))),
			Computation:   "N/p log(N/p) + k p (log p/eps)^(1/k) logN + N/p log p",
			Communication: "k p (log p/eps)^(1/k) + p + N/p",
		},
		{
			Algorithm:     "HSS (log log p/eps rounds)",
			SampleKeys:    SampleSizeHSSConstant(p, eps),
			Computation:   "N/p log(N/p) + p log(log p/eps) logN + N/p log p",
			Communication: "p log(log p/eps) + p + N/p",
		},
	}
	for i := range rows {
		rows[i].SampleBytes = rows[i].SampleKeys * float64(keyBytes)
	}
	return rows
}

// Fig41Point is one (p, sample-size) point of a Fig 4.1 curve.
type Fig41Point struct {
	P      int
	Sample float64 // keys
}

// Fig41Series returns the five Fig 4.1 curves (sample size vs p at the
// given eps): regular sampling, random sampling, HSS one round, HSS two
// rounds, and HSS with constant oversampling.
func Fig41Series(ps []int, nPerProc float64, eps float64) map[string][]Fig41Point {
	out := map[string][]Fig41Point{}
	add := func(name string, f func(p int) float64) {
		series := make([]Fig41Point, len(ps))
		for i, p := range ps {
			series[i] = Fig41Point{P: p, Sample: f(p)}
		}
		out[name] = series
	}
	add("regular sampling", func(p int) float64 { return SampleSizeRegular(p, eps) })
	add("random sampling", func(p int) float64 { return SampleSizeRandom(p, float64(p)*nPerProc, eps) })
	add("HSS - 1 round", func(p int) float64 { return SampleSizeHSS(p, eps, 1) })
	add("HSS - 2 rounds", func(p int) float64 { return SampleSizeHSS(p, eps, 2) })
	add("HSS - constant oversampling", func(p int) float64 { return SampleSizeHSSConstant(p, eps) })
	return out
}

// BSPCost models the end-to-end running-time terms of §5.1 for HSS with k
// rounds, in abstract time units: TI per key-comparison-ish computation
// step and Tc per transferred key.
type BSPCost struct {
	LocalSort   float64 // N/p log(N/p) · TI
	Histogram   float64 // S logN · TI + S · Tc (pipelined)
	DataMove    float64 // N/p · Tc
	FinalMerge  float64 // N/p log p · TI
	SampleTotal float64 // S, in keys
}

// Total sums the phase costs.
func (c BSPCost) Total() float64 {
	return c.LocalSort + c.Histogram + c.DataMove + c.FinalMerge
}

// HSSCost evaluates the §5.1 cost model for HSS with k rounds.
func HSSCost(p int, nPerProc, eps float64, k int, ti, tc float64) BSPCost {
	n := float64(p) * nPerProc
	s := SampleSizeHSS(p, eps, k)
	return BSPCost{
		LocalSort:   nPerProc * math.Log2(math.Max(nPerProc, 2)) * ti,
		Histogram:   s*math.Log2(math.Max(n, 2))*ti + s*tc,
		DataMove:    nPerProc * tc,
		FinalMerge:  nPerProc * math.Log2(float64(max(p, 2))) * ti,
		SampleTotal: s,
	}
}

// SampleSortCost evaluates the §5.1 cost model for sample sort with the
// given overall sample size s.
func SampleSortCost(p int, nPerProc, s, ti, tc float64) BSPCost {
	n := float64(p) * nPerProc
	return BSPCost{
		LocalSort:   nPerProc * math.Log2(math.Max(nPerProc, 2)) * ti,
		Histogram:   s*math.Log2(math.Max(n, 2))*ti + s*tc, // sorting the sample + gather
		DataMove:    nPerProc * tc,
		FinalMerge:  nPerProc * math.Log2(float64(max(p, 2))) * ti,
		SampleTotal: s,
	}
}
