package server

import (
	"bytes"
	"cmp"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hssort"
	"hssort/internal/keycoder"
)

// jobStatus is a job's lifecycle state as reported over HTTP.
type jobStatus string

const (
	statusQueued   jobStatus = "queued"
	statusRunning  jobStatus = "running"
	statusDone     jobStatus = "done"
	statusFailed   jobStatus = "failed"
	statusCanceled jobStatus = "canceled"
)

// job is one submitted sort riding through the scheduler. The identity
// fields are immutable after submission; the outcome fields are guarded
// by mu and final once done is closed.
type job struct {
	id      string
	tenant  string
	dataset string
	data    payload
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{}

	mu        sync.Mutex
	status    jobStatus
	err       error
	result    *jobResult
	stats     hssort.Stats
	outcome   planOutcome
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// jobResult is the JSON-ready sorted output: Shards is the typed
// per-shard partition slice ([][]int64, [][]uint64, [][]float64 or
// [][][]byte — byte keys marshal as base64 strings), Values the record
// payloads reordered in tandem for record jobs.
type jobResult struct {
	Shards any        `json:"shards"`
	Values [][]string `json:"values,omitempty"`
}

// storedDataset is the rank-query view of a dataset's last sorted
// output: rank parses a raw query key per the dataset's key type and
// returns the number of sorted keys strictly below it.
type storedDataset struct {
	keyType string
	n       int64
	rank    func(raw string) (int64, error)
}

// payload is one decoded job body: the typed keys (and optional record
// payloads) plus the typed run logic. Decoding picks the concrete type;
// the scheduler's workers only see this interface.
type payload interface {
	keyType() string
	n() int
	// run sorts the payload on srv's engine pool, consulting and
	// updating the plan cache under the tenant's key, and returns the
	// JSON-ready result plus the rank-query view of the sorted output.
	run(ctx context.Context, srv *Server, tenant string) (*jobResult, *storedDataset, hssort.Stats, planOutcome, error)
}

// keyTypes lists the accepted keyType values, in flag-help order.
var keyTypes = []string{"bytes", "float64", "int64", "uint64"}

// jobRequest is the POST /v1/jobs body.
type jobRequest struct {
	// Tenant is the submitting tenant; quotas, the plan cache and rank
	// queries are all scoped to it. Required.
	Tenant string `json:"tenant"`
	// Dataset names the dataset for rank queries. Default "default".
	Dataset string `json:"dataset"`
	// KeyType selects the key decoding: int64, uint64, float64 or bytes.
	KeyType string `json:"keyType"`
	// Keys is the flat key array, decoded per KeyType (bytes keys are
	// base64 strings, the encoding/json convention for []byte).
	Keys json.RawMessage `json:"keys"`
	// Values optionally carries one opaque payload string per key; the
	// response returns them reordered with their keys. Numeric key
	// types only.
	Values []string `json:"values,omitempty"`
	// TimeoutMs arms a job deadline: past it the sort aborts mid-phase
	// on every rank and the job fails with the deadline error.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// Wait makes the submission block until the job finishes and return
	// the full job document instead of a 202 ticket.
	Wait bool `json:"wait,omitempty"`
}

// decodePayload decodes the request's keys into the typed payload.
func decodePayload(req *jobRequest, shards int) (payload, error) {
	switch req.KeyType {
	case "int64":
		return decodeOrdered[int64](req, shards, keycoder.Int64{}.Encode, func(raw string) (int64, error) {
			return strconv.ParseInt(raw, 10, 64)
		})
	case "uint64":
		return decodeOrdered[uint64](req, shards, keycoder.Uint64{}.Encode, func(raw string) (uint64, error) {
			return strconv.ParseUint(raw, 10, 64)
		})
	case "float64":
		return decodeOrdered[float64](req, shards, keycoder.Float64{}.Encode, func(raw string) (float64, error) {
			return strconv.ParseFloat(raw, 64)
		})
	case "bytes":
		if req.Values != nil {
			return nil, fmt.Errorf("values require an ordered key type (valid values: float64, int64, uint64)")
		}
		var keys [][]byte
		if err := json.Unmarshal(req.Keys, &keys); err != nil {
			return nil, fmt.Errorf("keys: %v (bytes keys are base64 strings)", err)
		}
		return &bytesPayload{shards: shardSlice(keys, shards)}, nil
	case "":
		return nil, fmt.Errorf("keyType is required (valid values: %s)", strings.Join(keyTypes, ", "))
	default:
		return nil, fmt.Errorf("unknown key type %q (valid values: %s)", req.KeyType, strings.Join(keyTypes, ", "))
	}
}

func decodeOrdered[K cmp.Ordered](req *jobRequest, shards int, code func(K) uint64, parse func(string) (K, error)) (payload, error) {
	var keys []K
	if err := json.Unmarshal(req.Keys, &keys); err != nil {
		return nil, fmt.Errorf("keys: %v", err)
	}
	var values [][]string
	if req.Values != nil {
		if len(req.Values) != len(keys) {
			return nil, fmt.Errorf("%d values for %d keys (they pair one-to-one)", len(req.Values), len(keys))
		}
		values = shardSlice(req.Values, shards)
	}
	return &orderedPayload[K]{
		kt:     req.KeyType,
		shards: shardSlice(keys, shards),
		values: values,
		code:   code,
		parse:  parse,
	}, nil
}

// shardSlice splits a flat slice into n contiguous shards (the engine's
// per-rank inputs). Trailing shards may be empty for short inputs.
func shardSlice[E any](flat []E, n int) [][]E {
	shards := make([][]E, n)
	per := (len(flat) + n - 1) / n
	for r := range shards {
		lo := min(r*per, len(flat))
		hi := min(lo+per, len(flat))
		shards[r] = flat[lo:hi]
	}
	return shards
}

// orderedPayload is the numeric-key payload (int64, uint64, float64),
// optionally carrying record values.
type orderedPayload[K cmp.Ordered] struct {
	kt     string
	shards [][]K
	values [][]string // non-nil → record job, aligned with shards
	code   func(K) uint64
	parse  func(string) (K, error)
}

func (d *orderedPayload[K]) keyType() string { return d.kt }

func (d *orderedPayload[K]) n() int {
	var n int
	for _, sh := range d.shards {
		n += len(sh)
	}
	return n
}

func (d *orderedPayload[K]) run(ctx context.Context, srv *Server, tenant string) (*jobResult, *storedDataset, hssort.Stats, planOutcome, error) {
	fp := srv.fingerprint(d.kt, len(d.shards), d.n(), sampleCodes(d.shards, d.code))
	pk := planKey{tenant: tenant, fp: fp}
	if d.values != nil {
		return d.runKV(ctx, srv, pk)
	}
	key := engineKey{keyType: d.kt}
	pe, err := srv.engines.acquire(key, func() (*pooledEngine, error) {
		s, err := hssort.New[K](srv.engineConfig())
		if err != nil {
			return nil, err
		}
		return &pooledEngine{impl: s, close: s.Close}, nil
	})
	if err != nil {
		return nil, nil, hssort.Stats{}, planNone, err
	}
	defer srv.engines.release(key, pe)
	eng := pe.impl.(*hssort.Sorter[K])

	outs, stats, outcome, err := sortWithPlanCache(ctx, srv, pk, sorterAdapter[K]{eng}, d.shards)
	if err != nil {
		return nil, nil, stats, outcome, err
	}
	flat := flatten(outs)
	sd := &storedDataset{keyType: d.kt, n: int64(len(flat)), rank: func(raw string) (int64, error) {
		k, err := d.parse(raw)
		if err != nil {
			return 0, fmt.Errorf("key %q: %v", raw, err)
		}
		return int64(sort.Search(len(flat), func(i int) bool { return flat[i] >= k })), nil
	}}
	return &jobResult{Shards: outs}, sd, stats, outcome, nil
}

// runKV is the record-job path: zip keys and values into KV records,
// sort on the record engine, unzip for the response.
func (d *orderedPayload[K]) runKV(ctx context.Context, srv *Server, pk planKey) (*jobResult, *storedDataset, hssort.Stats, planOutcome, error) {
	key := engineKey{keyType: d.kt, kv: true}
	pe, err := srv.engines.acquire(key, func() (*pooledEngine, error) {
		s, err := hssort.NewKV[K, string](srv.engineConfig())
		if err != nil {
			return nil, err
		}
		return &pooledEngine{impl: s, close: s.Close}, nil
	})
	if err != nil {
		return nil, nil, hssort.Stats{}, planNone, err
	}
	defer srv.engines.release(key, pe)
	eng := pe.impl.(*hssort.KVSorter[K, string])

	recs := make([][]hssort.KV[K, string], len(d.shards))
	for r, sh := range d.shards {
		recs[r] = make([]hssort.KV[K, string], len(sh))
		for i, k := range sh {
			recs[r][i] = hssort.KV[K, string]{Key: k, Val: d.values[r][i]}
		}
	}
	outs, stats, outcome, err := sortWithPlanCache(ctx, srv, pk, kvAdapter[K]{eng}, recs)
	if err != nil {
		return nil, nil, stats, outcome, err
	}
	keyShards := make([][]K, len(outs))
	valShards := make([][]string, len(outs))
	var flat []K
	for r, o := range outs {
		keyShards[r] = make([]K, len(o))
		valShards[r] = make([]string, len(o))
		for i, kv := range o {
			keyShards[r][i] = kv.Key
			valShards[r][i] = kv.Val
		}
		flat = append(flat, keyShards[r]...)
	}
	sd := &storedDataset{keyType: d.kt, n: int64(len(flat)), rank: func(raw string) (int64, error) {
		k, err := d.parse(raw)
		if err != nil {
			return 0, fmt.Errorf("key %q: %v", raw, err)
		}
		return int64(sort.Search(len(flat), func(i int) bool { return flat[i] >= k })), nil
	}}
	return &jobResult{Shards: keyShards, Values: valShards}, sd, stats, outcome, nil
}

// bytesPayload is the variable-length byte-string payload, sorted on
// the prefix-code plane (hssort.NewBytes).
type bytesPayload struct {
	shards [][][]byte
}

func (d *bytesPayload) keyType() string { return "bytes" }

func (d *bytesPayload) n() int {
	var n int
	for _, sh := range d.shards {
		n += len(sh)
	}
	return n
}

func (d *bytesPayload) run(ctx context.Context, srv *Server, tenant string) (*jobResult, *storedDataset, hssort.Stats, planOutcome, error) {
	code := keycoder.Prefix{}.Code
	fp := srv.fingerprint("bytes", len(d.shards), d.n(), sampleCodes(d.shards, code))
	pk := planKey{tenant: tenant, fp: fp}
	key := engineKey{keyType: "bytes"}
	pe, err := srv.engines.acquire(key, func() (*pooledEngine, error) {
		s, err := hssort.NewBytes(srv.engineConfig())
		if err != nil {
			return nil, err
		}
		return &pooledEngine{impl: s, close: s.Close}, nil
	})
	if err != nil {
		return nil, nil, hssort.Stats{}, planNone, err
	}
	defer srv.engines.release(key, pe)
	eng := pe.impl.(*hssort.Sorter[[]byte])

	outs, stats, outcome, err := sortWithPlanCache(ctx, srv, pk, sorterAdapter[[]byte]{eng}, d.shards)
	if err != nil {
		return nil, nil, stats, outcome, err
	}
	flat := flatten(outs)
	sd := &storedDataset{keyType: "bytes", n: int64(len(flat)), rank: func(raw string) (int64, error) {
		k := []byte(raw)
		return int64(sort.Search(len(flat), func(i int) bool { return bytes.Compare(flat[i], k) >= 0 })), nil
	}}
	return &jobResult{Shards: outs}, sd, stats, outcome, nil
}

func flatten[E any](shards [][]E) []E {
	var n int
	for _, sh := range shards {
		n += len(sh)
	}
	flat := make([]E, 0, n)
	for _, sh := range shards {
		flat = append(flat, sh...)
	}
	return flat
}

// planEngine is the slice of the Sorter/KVSorter surface the plan-cache
// path needs, over element type E.
type planEngine[E any] interface {
	plan(ctx context.Context, shards [][]E) (*hssort.Plan[E], error)
	sortWithPlan(ctx context.Context, plan *hssort.Plan[E], shards [][]E) ([][]E, hssort.Stats, error)
	sort(ctx context.Context, shards [][]E) ([][]E, hssort.Stats, error)
}

type sorterAdapter[K any] struct{ s *hssort.Sorter[K] }

func (a sorterAdapter[K]) plan(ctx context.Context, shards [][]K) (*hssort.Plan[K], error) {
	return a.s.Plan(ctx, shards)
}
func (a sorterAdapter[K]) sortWithPlan(ctx context.Context, plan *hssort.Plan[K], shards [][]K) ([][]K, hssort.Stats, error) {
	return a.s.SortWithPlan(ctx, plan, shards)
}
func (a sorterAdapter[K]) sort(ctx context.Context, shards [][]K) ([][]K, hssort.Stats, error) {
	return a.s.Sort(ctx, shards)
}

type kvAdapter[K cmp.Ordered] struct{ s *hssort.KVSorter[K, string] }

func (a kvAdapter[K]) plan(ctx context.Context, shards [][]hssort.KV[K, string]) (*hssort.Plan[hssort.KV[K, string]], error) {
	return a.s.Plan(ctx, shards)
}
func (a kvAdapter[K]) sortWithPlan(ctx context.Context, plan *hssort.Plan[hssort.KV[K, string]], shards [][]hssort.KV[K, string]) ([][]hssort.KV[K, string], hssort.Stats, error) {
	return a.s.SortWithPlan(ctx, plan, shards)
}
func (a kvAdapter[K]) sort(ctx context.Context, shards [][]hssort.KV[K, string]) ([][]hssort.KV[K, string], hssort.Stats, error) {
	return a.s.SortKV(ctx, shards)
}

// sortWithPlanCache is the recurring-tenant fast path: apply the cached
// splitter plan for (tenant, fingerprint) when one exists — zero
// histogramming rounds — otherwise determine fresh splitters once via
// Plan, cache them, and sort with the new plan. Cached plans run under
// the engine's staleness guard (Config.PlanStaleness): when a
// fingerprint collision hands drifted data a stale plan, the guard
// re-histograms (Stats.Replanned) and the poisoned cache entry is
// dropped. On a miss, the determination work Plan performed is folded
// back into the returned Stats (Rounds, sample sizes), so a first-sight
// job honestly reports its histogramming while a cache-hit job reports
// Rounds = 0.
func sortWithPlanCache[E any](ctx context.Context, srv *Server, pk planKey, eng planEngine[E], shards [][]E) ([][]E, hssort.Stats, planOutcome, error) {
	if cached, ok := srv.plans.get(pk); ok {
		if plan, ok := cached.(*hssort.Plan[E]); ok {
			outs, stats, err := eng.sortWithPlan(ctx, plan, shards)
			if err != nil {
				return nil, stats, planHit, err
			}
			if stats.Replanned {
				srv.plans.remove(pk)
				return outs, stats, planReplanned, nil
			}
			return outs, stats, planHit, nil
		}
		// Same fingerprint, different element type (kv vs plain under
		// one tenant): evict and fall through to a fresh plan.
		srv.plans.remove(pk)
	}
	plan, err := eng.plan(ctx, shards)
	if err != nil {
		if ctx.Err() != nil {
			return nil, hssort.Stats{}, planMiss, err
		}
		// Planning can legitimately refuse (e.g. an empty dataset);
		// sort without a plan and leave the cache alone.
		outs, stats, serr := eng.sort(ctx, shards)
		return outs, stats, planMiss, serr
	}
	srv.plans.put(pk, plan)
	outs, stats, err := eng.sortWithPlan(ctx, plan, shards)
	if err == nil {
		if stats.Replanned {
			// The guard rejected the plan we just determined (tiny or
			// degenerate datasets can't meet the balance bound): keep
			// the replan's own round accounting and don't cache a plan
			// already known to be bad.
			srv.plans.remove(pk)
		} else {
			stats.Rounds = plan.Rounds
			stats.SamplePerRound = plan.SamplePerRound
			stats.TotalSample = plan.TotalSample
		}
	}
	return outs, stats, planMiss, err
}
