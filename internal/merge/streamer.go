package merge

import "hssort/internal/codes"

// Streamer is the incremental k-way merge surface the streaming exchange
// drives: the growable AddRun/Append/CloseRun plane plus guarded and
// bare emission. *LoserTree implements it directly; the code-plane
// adapters below implement it over CodeTree.
type Streamer[K any] interface {
	// AddRun registers a new open run of sorted keys and returns its
	// index.
	AddRun(keys []K) int
	// Append feeds more keys to open run i.
	Append(i int, keys []K)
	// CloseRun seals run i.
	CloseRun(i int)
	// Consumed returns the number of keys emitted from run i.
	Consumed(i int) int64
	// Exhausted reports whether every run is closed and fully emitted.
	Exhausted() bool
	// NextReady emits the next key only while emission is provably safe.
	NextReady() (K, bool)
	// Next emits the next key unconditionally (all runs closed).
	Next() (K, bool)
	// Rest removes and returns every run's unconsumed keys in run-index
	// order, leaving the streamer exhausted — the bulk hand-off that
	// lets the drain finish with ParMerge/ParMergeCoded instead of
	// pulling the tail one key at a time. All runs must be closed. On
	// the code planes the second result carries each run's parallel
	// codes (so the parallel merge re-extracts nothing); on the
	// comparator plane it is nil.
	Rest() ([][]K, [][]codes.Code)
	// Reset empties the streamer for reuse, keeping internal scratch
	// allocated.
	Reset()
}

// NewStreamer returns the best incremental merge for the key type: the
// raw-compare CodeTree when the keys are code points (the pure code
// plane — chunks alias straight into the tree, nothing is re-encoded),
// a CodeTree fed through the extractor when one is supplied (the
// record/KV plane — each appended chunk is encoded once), and the
// comparator LoserTree otherwise. The extractor, when non-nil, must be
// order-preserving for cmp.
func NewStreamer[K any](cmp func(K, K) int, code func(K) uint64) Streamer[K] {
	var zero K
	if _, ok := any(zero).(codes.Code); ok {
		return any(&pureCodeStreamer{t: NewCodeTree[codes.Code]()}).(Streamer[K])
	}
	if code != nil {
		return &codedStreamer[K]{t: NewCodeTree[K](), code: code}
	}
	return NewStreaming(cmp)
}

// NewStreamerTie is NewStreamer for the prefix plane: when tie is set
// (and a code extractor is in play) the CodeTree resolves equal-code
// matches with cmp before the run-index tie-break, so prefix collisions
// across runs merge in comparator order. Appended chunks must be
// tie-ordered themselves (code-sorted, cmp-sorted within equal-code
// spans).
func NewStreamerTie[K any](cmp func(K, K) int, code func(K) uint64, tie bool) Streamer[K] {
	if !tie || code == nil {
		return NewStreamer(cmp, code)
	}
	return &codedStreamer[K]{t: NewCodeTreeTie[K](cmp), code: code}
}

// pureCodeStreamer adapts CodeTree to Streamer[codes.Code]: the key
// slices are their own code slices.
type pureCodeStreamer struct {
	t *CodeTree[codes.Code]
}

func (s *pureCodeStreamer) AddRun(keys []codes.Code) int    { return s.t.AddRun(keys, keys) }
func (s *pureCodeStreamer) Append(i int, keys []codes.Code) { s.t.Append(i, keys, keys) }
func (s *pureCodeStreamer) CloseRun(i int)                  { s.t.CloseRun(i) }
func (s *pureCodeStreamer) Consumed(i int) int64            { return s.t.Consumed(i) }
func (s *pureCodeStreamer) Exhausted() bool                 { return s.t.Exhausted() }
func (s *pureCodeStreamer) NextReady() (codes.Code, bool)   { return s.t.NextReady() }
func (s *pureCodeStreamer) Next() (codes.Code, bool)        { return s.t.Next() }
func (s *pureCodeStreamer) Rest() ([][]codes.Code, [][]codes.Code) {
	return s.t.Rest()
}
func (s *pureCodeStreamer) Reset() { s.t.Reset() }

// codedStreamer adapts CodeTree to Streamer[K] via a code extractor:
// every appended chunk is encoded once (one extractor call per key per
// hop) and all merge comparisons are raw uint64s.
type codedStreamer[K any] struct {
	t    *CodeTree[K]
	code func(K) uint64
}

func (s *codedStreamer[K]) AddRun(keys []K) int {
	return s.t.AddRun(codes.Extract(keys, s.code), keys)
}
func (s *codedStreamer[K]) Append(i int, keys []K) {
	s.t.Append(i, codes.Extract(keys, s.code), keys)
}
func (s *codedStreamer[K]) CloseRun(i int)                { s.t.CloseRun(i) }
func (s *codedStreamer[K]) Consumed(i int) int64          { return s.t.Consumed(i) }
func (s *codedStreamer[K]) Exhausted() bool               { return s.t.Exhausted() }
func (s *codedStreamer[K]) NextReady() (K, bool)          { return s.t.NextReady() }
func (s *codedStreamer[K]) Next() (K, bool)               { return s.t.Next() }
func (s *codedStreamer[K]) Rest() ([][]K, [][]codes.Code) { return s.t.Rest() }
func (s *codedStreamer[K]) Reset()                        { s.t.Reset() }
