// Package comm is the distributed message-passing runtime that stands in
// for MPI/Charm++ in this reproduction.
//
// A World hosts p ranks over a pluggable Transport. Run launches one
// goroutine per hosted rank executing the same SPMD function, mirroring
// how the paper's algorithm runs one process per core. Ranks share no
// mutable state; all interaction flows through Send/Recv.
//
// Three transports ship with the repository (see Transport):
//
//   - SimTransport (default): the simulated "accounting" backend. Bytes
//     are counted as if every payload were serialized, so communication
//     volume and message counts — the quantities in the paper's BSP
//     analysis (§5.1) — are measured, not estimated.
//   - InprocTransport: the zero-copy shared-memory fast path for
//     throughput runs, with no accounting overhead.
//   - TCPTransport: the multi-process backend. Each rank is its own OS
//     process; messages cross real sockets through the length-prefixed
//     binary protocol of wire.go (spec: docs/WIRE.md), and counters
//     report measured wire traffic. A process's transport hosts only
//     its own rank (RankHoster), so World and Pool drive just that rank
//     while peer processes run the rest of the same SPMD program;
//     NewTCPLoopback builds an in-process world over real localhost
//     sockets for tests and single-machine runs.
//
// Semantics common to all backends (pinned by the conformance suite in
// transport_test.go):
//
//   - Send is asynchronous and never blocks (mailboxes and outbound
//     queues are unbounded), so no protocol can deadlock on buffer
//     exhaustion — matching MPI's buffered-send model that the paper's
//     collectives assume.
//   - Recv blocks until a message matching (src, tag) arrives. Matching
//     messages from one sender with one tag are delivered in send order
//     (pairwise FIFO, the MPI non-overtaking rule).
//   - The sender must not touch a payload after sending. The in-memory
//     backends pass payloads by reference; the wire backend serializes,
//     so the receiver always owns what it gets.
//
// A panic in any rank aborts the whole World — across processes, for
// the wire backend — unblocking every Recv with ErrAborted; otherwise a
// bug in one rank would deadlock the rest.
package comm
