package spill

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
)

// Stats is one sort's spill activity, drained by TakeStats and folded
// into the pipeline stats (and from there into hssort.Stats).
type Stats struct {
	// SpilledBytes is the uncompressed volume written to run files.
	SpilledBytes int64
	// FileBytes is the on-disk volume (headers + stored payloads) —
	// SpilledBytes/FileBytes is the achieved compression ratio.
	FileBytes int64
	// Reads is the number of frames read back from run files.
	Reads int64
	// PeakResident is the high-water mark of budget-metered resident
	// bytes (admitted exchange chunks plus read-back frames).
	PeakResident int64
}

// Manager is a rank's out-of-core state: the spill directory, the
// memory-budget meter the admission decisions key on, and the per-sort
// counters. One Manager per hosted rank; all methods are safe for
// concurrent use (exchange handlers and merge drains run on the rank's
// goroutine, but diagnostics may sample concurrently).
//
// The budget meters the spill-managed working set — chunks admitted to
// merge trees and frames read back from disk — not caller-owned arrays
// (the input shard, the output). Acquire/Release implement merge.Budget.
type Manager struct {
	budget int64
	dir    string
	ownDir bool // delete dir on Close (temp dir or per-rank subdir)

	mu       sync.Mutex
	resident int64
	seq      int
	st       Stats
}

// NewManager creates the spill state for one rank with the given budget
// in bytes. With dir == "" a private temp directory is used; otherwise
// the manager claims the deterministic per-rank subdirectory
// dir/hssort-rank-<rank>, wiping any leftovers a crashed predecessor of
// the same rank left behind (this is what lets a respawned rank rejoin
// with a clean spill state while other ranks of the same job share dir).
func NewManager(budget int64, dir string, rank int) (*Manager, error) {
	if budget <= 0 {
		return nil, &Error{Op: "create", Path: dir, Err: fmt.Errorf("memory budget must be positive, got %d", budget)}
	}
	m := &Manager{budget: budget, ownDir: true}
	if dir == "" {
		d, err := os.MkdirTemp("", fmt.Sprintf("hssort-spill-rank-%d-", rank))
		if err != nil {
			return nil, &Error{Op: "create", Path: "", Err: err}
		}
		m.dir = d
		return m, nil
	}
	d := filepath.Join(dir, fmt.Sprintf("hssort-rank-%d", rank))
	if err := os.RemoveAll(d); err != nil {
		return nil, &Error{Op: "create", Path: d, Err: err}
	}
	if err := os.MkdirAll(d, 0o755); err != nil {
		return nil, &Error{Op: "create", Path: d, Err: err}
	}
	m.dir = d
	return m, nil
}

// Budget returns the configured budget in bytes. Nil-safe (returns 0).
func (m *Manager) Budget() int64 {
	if m == nil {
		return 0
	}
	return m.budget
}

// Dir returns the rank's spill directory.
func (m *Manager) Dir() string { return m.dir }

// Acquire charges b resident bytes against the budget and advances the
// peak high-water mark. It never blocks: the budget is enforced by the
// callers' admission decisions (WouldExceed), not by back-pressure here.
func (m *Manager) Acquire(b int64) {
	m.mu.Lock()
	m.resident += b
	if m.resident > m.st.PeakResident {
		m.st.PeakResident = m.resident
	}
	m.mu.Unlock()
}

// Release returns b resident bytes to the budget.
func (m *Manager) Release(b int64) {
	m.mu.Lock()
	m.resident -= b
	m.mu.Unlock()
}

// WouldExceed reports whether admitting b more resident bytes would
// push the working set over budget — the spill decision point.
func (m *Manager) WouldExceed(b int64) bool {
	m.mu.Lock()
	over := m.resident+b > m.budget
	m.mu.Unlock()
	return over
}

// TakeStats drains the per-sort counters, returning the activity since
// the previous call. Nil-safe (returns zero Stats).
func (m *Manager) TakeStats() Stats {
	if m == nil {
		return Stats{}
	}
	m.mu.Lock()
	st := m.st
	m.st = Stats{}
	m.mu.Unlock()
	return st
}

// Reset clears the manager between sorts: counters and the resident
// meter are zeroed and any run files still in the directory — leftovers
// of an aborted or failed sort — are removed. A successful sort deletes
// its run files as it consumes them, so this is normally a no-op scan.
func (m *Manager) Reset() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	m.resident = 0
	m.st = Stats{}
	m.mu.Unlock()
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return &Error{Op: "remove", Path: m.dir, Err: err}
	}
	var first error
	for _, e := range ents {
		if err := os.Remove(filepath.Join(m.dir, e.Name())); err != nil && first == nil {
			first = &Error{Op: "remove", Path: filepath.Join(m.dir, e.Name()), Err: err}
		}
	}
	return first
}

// Close removes the rank's spill directory and everything in it.
func (m *Manager) Close() error {
	if m == nil || !m.ownDir {
		return nil
	}
	if err := os.RemoveAll(m.dir); err != nil {
		return &Error{Op: "remove", Path: m.dir, Err: err}
	}
	return nil
}

// newPath reserves the next run-file path.
func (m *Manager) newPath() string {
	m.mu.Lock()
	n := m.seq
	m.seq++
	m.mu.Unlock()
	return filepath.Join(m.dir, fmt.Sprintf("run-%06d.spill", n))
}

// noteSpill records frame bytes written to disk.
func (m *Manager) noteSpill(uncompressed, stored int64) {
	m.mu.Lock()
	m.st.SpilledBytes += uncompressed
	m.st.FileBytes += stored
	m.mu.Unlock()
}

// noteRead records one frame read back from disk.
func (m *Manager) noteRead() {
	m.mu.Lock()
	m.st.Reads++
	m.mu.Unlock()
}

// FrameKeys picks the read-back frame size (in keys) for a merge with
// the given fan-in, so that one resident frame per run totals about a
// quarter of the budget, clamped to [64, 1<<20] keys.
func (m *Manager) FrameKeys(keySize int64, fanin int) int {
	if fanin < 1 {
		fanin = 1
	}
	k := m.budget / (4 * int64(fanin) * keySize)
	if k < 64 {
		k = 64
	}
	if k > 1<<20 {
		k = 1 << 20
	}
	return int(k)
}

// Spillable reports whether K is plain data — fixed-size, pointer-free —
// and therefore safe to round-trip through a run file byte-for-byte.
// Variable-length keys (strings, slices) and anything holding pointers
// are not spillable; the root Config validation rejects them up front.
func Spillable[K any]() bool {
	var zero K
	return podType(reflect.TypeOf(&zero).Elem())
}

func podType(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return podType(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !podType(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
