package merge

import (
	"cmp"
	"math/rand/v2"
	"slices"
	"testing"
	"testing/quick"
)

func intCmp(a, b int) int { return cmp.Compare(a, b) }

func TestTwoBasic(t *testing.T) {
	got := Two([]int{1, 3, 5}, []int{2, 4, 6}, intCmp)
	want := []int{1, 2, 3, 4, 5, 6}
	if !slices.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTwoEmpty(t *testing.T) {
	if got := Two(nil, []int{1}, intCmp); !slices.Equal(got, []int{1}) {
		t.Errorf("nil+[1] = %v", got)
	}
	if got := Two([]int{1}, nil, intCmp); !slices.Equal(got, []int{1}) {
		t.Errorf("[1]+nil = %v", got)
	}
	if got := Two[int](nil, nil, intCmp); len(got) != 0 {
		t.Errorf("nil+nil = %v", got)
	}
}

func TestTwoStable(t *testing.T) {
	type kv struct{ k, src int }
	a := []kv{{1, 0}, {2, 0}}
	b := []kv{{1, 1}, {2, 1}}
	got := Two(a, b, func(x, y kv) int { return cmp.Compare(x.k, y.k) })
	for i := 0; i < len(got)-1; i++ {
		if got[i].k == got[i+1].k && got[i].src > got[i+1].src {
			t.Fatalf("unstable merge at %d: %v", i, got)
		}
	}
}

func TestTwoProperty(t *testing.T) {
	f := func(a, b []int16) bool {
		as := make([]int, len(a))
		for i, v := range a {
			as[i] = int(v)
		}
		bs := make([]int, len(b))
		for i, v := range b {
			bs[i] = int(v)
		}
		slices.Sort(as)
		slices.Sort(bs)
		got := Two(as, bs, intCmp)
		want := append(append([]int{}, as...), bs...)
		slices.Sort(want)
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKWayEmptyInputs(t *testing.T) {
	if got := KWay[int](nil, intCmp); len(got) != 0 {
		t.Errorf("KWay(nil) = %v", got)
	}
	if got := KWay([][]int{{}, {}, {}}, intCmp); len(got) != 0 {
		t.Errorf("KWay(empties) = %v", got)
	}
	if got := KWay([][]int{{}, {4, 5}, {}}, intCmp); !slices.Equal(got, []int{4, 5}) {
		t.Errorf("KWay(one run) = %v", got)
	}
}

func TestKWaySingleRun(t *testing.T) {
	in := [][]int{{1, 2, 3}}
	got := KWay(in, intCmp)
	if !slices.Equal(got, []int{1, 2, 3}) {
		t.Errorf("got %v", got)
	}
	// Result must be a copy, not an alias.
	got[0] = 99
	if in[0][0] == 99 {
		t.Error("KWay aliased its input for the single-run case")
	}
}

func TestKWayKnown(t *testing.T) {
	runs := [][]int{
		{1, 5, 9},
		{2, 6, 10},
		{3, 7, 11},
		{4, 8, 12},
	}
	got := KWay(runs, intCmp)
	want := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if !slices.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestKWayDuplicatesAndUnequalLengths(t *testing.T) {
	runs := [][]int{
		{1, 1, 1, 1},
		{1},
		{},
		{0, 1, 2},
		{1, 1},
	}
	got := KWay(runs, intCmp)
	want := []int{0, 1, 1, 1, 1, 1, 1, 1, 1, 2}
	if !slices.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestKWayStableAcrossRuns(t *testing.T) {
	type kv struct{ k, src int }
	runs := [][]kv{
		{{5, 0}, {7, 0}},
		{{5, 1}},
		{{5, 2}, {6, 2}},
	}
	got := KWay(runs, func(x, y kv) int { return cmp.Compare(x.k, y.k) })
	var srcs []int
	for _, e := range got {
		if e.k == 5 {
			srcs = append(srcs, e.src)
		}
	}
	if !slices.Equal(srcs, []int{0, 1, 2}) {
		t.Errorf("tie order %v, want [0 1 2]", srcs)
	}
}

func TestKWayProperty(t *testing.T) {
	f := func(seedRaw uint32, kRaw uint8) bool {
		rng := rand.New(rand.NewPCG(uint64(seedRaw), 1))
		k := int(kRaw%17) + 1
		runs := make([][]int, k)
		var all []int
		for i := range runs {
			n := rng.IntN(50)
			runs[i] = make([]int, n)
			for j := range runs[i] {
				runs[i][j] = rng.IntN(100)
			}
			slices.Sort(runs[i])
			all = append(all, runs[i]...)
		}
		slices.Sort(all)
		return slices.Equal(KWay(runs, intCmp), all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLoserTreeStreaming(t *testing.T) {
	runs := [][]int{{2, 4}, {1, 3}}
	lt := NewLoserTree(runs, intCmp)
	var got []int
	for {
		k, ok := lt.Next()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if !slices.Equal(got, []int{1, 2, 3, 4}) {
		t.Errorf("got %v", got)
	}
	// Next after exhaustion stays exhausted.
	if _, ok := lt.Next(); ok {
		t.Error("Next returned ok after exhaustion")
	}
}

func TestLoserTreeManyRuns(t *testing.T) {
	// Non-power-of-two run count exercises the padded virtual leaves.
	const k = 13
	runs := make([][]int, k)
	for i := range runs {
		runs[i] = []int{i, i + k, i + 2*k}
	}
	got := KWay(runs, intCmp)
	if len(got) != 3*k {
		t.Fatalf("got %d keys, want %d", len(got), 3*k)
	}
	if !slices.IsSorted(got) {
		t.Error("output not sorted")
	}
}

func BenchmarkKWay16(b *testing.B) {
	benchmarkKWay(b, 16)
}

func BenchmarkKWay256(b *testing.B) {
	benchmarkKWay(b, 256)
}

func benchmarkKWay(b *testing.B, k int) {
	rng := rand.New(rand.NewPCG(1, 2))
	runs := make([][]int64, k)
	per := 1 << 14 / k
	for i := range runs {
		runs[i] = make([]int64, per)
		for j := range runs[i] {
			runs[i][j] = rng.Int64()
		}
		slices.Sort(runs[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KWay(runs, func(a, c int64) int { return cmp.Compare(a, c) })
	}
}
