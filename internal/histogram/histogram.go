package histogram

import (
	"fmt"
	"sort"

	"hssort/internal/codes"
)

// LocalRanks returns, for each probe, the number of keys in the local
// sorted input that compare strictly less than the probe — the local
// histogram of §2.3, computed with one binary search per probe
// (O(M log(N/p)) as in §5.1.2). probes need not be sorted.
//
// When a pipeline runs on the code plane, sorted and probes arrive as
// code arrays and the searches specialize to branch-lean raw uint64
// comparisons — no comparator call per probe level. The sniff is sound
// by the codes.Code invariant: code slices exist only in natural order-
// correspondence with their comparator.
func LocalRanks[K any](sorted []K, probes []K, cmp func(K, K) int) []int64 {
	if cs, ok := any(sorted).([]codes.Code); ok {
		return codes.Ranks(cs, any(probes).([]codes.Code))
	}
	out := make([]int64, len(probes))
	for i, q := range probes {
		out[i] = int64(sort.Search(len(sorted), func(j int) bool {
			return cmp(sorted[j], q) >= 0
		}))
	}
	return out
}

// Interval is one splitter interval I_j(i) = (Lo, Hi): the open key range
// still containing the splitter. Missing bounds (start of the algorithm)
// are expressed with HasLo/HasHi so the key type needs no sentinels.
type Interval[K any] struct {
	// Lo is the exclusive lower-bound key; valid only if HasLo.
	Lo    K
	HasLo bool
	// Hi is the exclusive upper-bound key; valid only if HasHi.
	Hi    K
	HasHi bool
	// LoRank and HiRank are the global ranks of Lo and Hi (0 and N when
	// the bounds are absent): the rank window U_j(i)-L_j(i) of §3.3.
	LoRank, HiRank int64
}

// Width returns the number of keys still inside the interval's rank
// window.
func (iv Interval[K]) Width() int64 { return iv.HiRank - iv.LoRank }

// Contains reports whether key k lies strictly inside the interval.
func (iv Interval[K]) Contains(k K, cmp func(K, K) int) bool {
	if iv.HasLo && cmp(k, iv.Lo) <= 0 {
		return false
	}
	if iv.HasHi && cmp(k, iv.Hi) >= 0 {
		return false
	}
	return true
}

// Tracker is the central processor's splitter state across histogramming
// rounds. Targets are the ideal splitter ranks N·i/B for B buckets;
// splitter i is finalized once a probe's global rank lands in
// T_i = [N·i/B − Nε/(2B), N·i/B + Nε/(2B)] (§2.1).
//
// The tracker is agnostic to where ranks come from: the distributed
// reduction (internal/core), the protocol simulator, or the approximate
// oracle (§3.4) all feed the same Update.
type Tracker[K any] struct {
	n       int64
	buckets int
	eps     float64
	cmp     func(K, K) int

	targets []int64 // ideal rank of splitter i
	tol     int64   // Nε/(2B)

	loKey, hiKey   []K
	hasLo, hasHi   []bool
	loRank, hiRank []int64

	finalized []bool
	candidate []K // best key seen for splitter i
	candRank  []int64
	hasCand   []bool

	rounds int
}

// NewTracker creates splitter state for partitioning n keys into buckets
// buckets with imbalance threshold eps. It panics if buckets < 1 or n < 0.
func NewTracker[K any](n int64, buckets int, eps float64, cmp func(K, K) int) *Tracker[K] {
	if buckets < 1 {
		panic(fmt.Sprintf("histogram: buckets %d < 1", buckets))
	}
	if n < 0 {
		panic(fmt.Sprintf("histogram: n %d < 0", n))
	}
	s := buckets - 1
	t := &Tracker[K]{
		n:         n,
		buckets:   buckets,
		eps:       eps,
		cmp:       cmp,
		targets:   make([]int64, s),
		tol:       int64(eps * float64(n) / (2 * float64(buckets))),
		loKey:     make([]K, s),
		hiKey:     make([]K, s),
		hasLo:     make([]bool, s),
		hasHi:     make([]bool, s),
		loRank:    make([]int64, s),
		hiRank:    make([]int64, s),
		finalized: make([]bool, s),
		candidate: make([]K, s),
		candRank:  make([]int64, s),
		hasCand:   make([]bool, s),
	}
	for i := 0; i < s; i++ {
		t.targets[i] = n * int64(i+1) / int64(buckets)
		t.hiRank[i] = n
	}
	return t
}

// NumSplitters returns buckets-1.
func (t *Tracker[K]) NumSplitters() int { return len(t.targets) }

// Rounds returns how many Update calls (histogramming rounds) have been
// applied.
func (t *Tracker[K]) Rounds() int { return t.rounds }

// Tolerance returns the half-width Nε/(2B) of the target windows.
func (t *Tracker[K]) Tolerance() int64 { return t.tol }

// Target returns the ideal rank of splitter i.
func (t *Tracker[K]) Target(i int) int64 { return t.targets[i] }

// Update folds one round's histogram into the splitter bounds. probes must
// be sorted ascending and distinct; ranks[i] is the global rank (count of
// keys strictly less) of probes[i]. Update panics on unsorted probes in
// order to surface protocol bugs early.
func (t *Tracker[K]) Update(probes []K, ranks []int64) {
	t.rounds++
	if len(probes) != len(ranks) {
		panic(fmt.Sprintf("histogram: %d probes vs %d ranks", len(probes), len(ranks)))
	}
	for i := 1; i < len(probes); i++ {
		if t.cmp(probes[i-1], probes[i]) >= 0 {
			panic("histogram: probes not sorted/distinct")
		}
	}
	for i := range t.targets {
		if t.finalized[i] {
			continue
		}
		target := t.targets[i]
		// idx = first probe with rank >= target. Since probes are in key
		// order, ranks are non-decreasing; the two probes bracketing idx
		// are the best available bounds for this splitter.
		idx := sort.Search(len(ranks), func(j int) bool { return ranks[j] >= target })
		if idx < len(probes) {
			t.observe(i, probes[idx], ranks[idx])
		}
		if idx-1 >= 0 {
			t.observe(i, probes[idx-1], ranks[idx-1])
		}
	}
}

// observe folds a single (key, global rank) observation into splitter i's
// state.
func (t *Tracker[K]) observe(i int, key K, rank int64) {
	target := t.targets[i]
	diff := rank - target
	if diff < 0 {
		diff = -diff
	}
	if !t.hasCand[i] || diff < absDiff(t.candRank[i], target) {
		t.candidate[i], t.candRank[i], t.hasCand[i] = key, rank, true
	}
	if diff <= t.tol {
		t.finalized[i] = true
		return
	}
	if rank < target {
		if !t.hasLo[i] || rank > t.loRank[i] {
			t.loKey[i], t.loRank[i], t.hasLo[i] = key, rank, true
		}
	} else {
		if !t.hasHi[i] || rank < t.hiRank[i] {
			t.hiKey[i], t.hiRank[i], t.hasHi[i] = key, rank, true
		}
	}
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Done reports whether every splitter is finalized.
func (t *Tracker[K]) Done() bool {
	for _, f := range t.finalized {
		if !f {
			return false
		}
	}
	return true
}

// NumFinalized returns how many splitters are finalized.
func (t *Tracker[K]) NumFinalized() int {
	n := 0
	for _, f := range t.finalized {
		if f {
			n++
		}
	}
	return n
}

// ActiveIntervals returns the splitter intervals of all unfinalized
// splitters, deduplicated: as §3.3 observes, two splitter intervals are
// either disjoint or identical, so consecutive duplicates collapse.
// Sampling in the next round is restricted to these intervals.
func (t *Tracker[K]) ActiveIntervals() []Interval[K] {
	var out []Interval[K]
	for i := range t.targets {
		if t.finalized[i] {
			continue
		}
		iv := Interval[K]{
			Lo: t.loKey[i], HasLo: t.hasLo[i], LoRank: t.loRank[i],
			Hi: t.hiKey[i], HasHi: t.hasHi[i], HiRank: t.hiRank[i],
		}
		if len(out) > 0 && sameInterval(out[len(out)-1], iv, t.cmp) {
			continue
		}
		out = append(out, iv)
	}
	return out
}

// sameInterval reports whether two intervals have identical bounds.
func sameInterval[K any](a, b Interval[K], cmp func(K, K) int) bool {
	if a.HasLo != b.HasLo || a.HasHi != b.HasHi {
		return false
	}
	if a.HasLo && cmp(a.Lo, b.Lo) != 0 {
		return false
	}
	if a.HasHi && cmp(a.Hi, b.Hi) != 0 {
		return false
	}
	return true
}

// Coverage returns G_j: the total rank width of the active intervals —
// the number of input keys the next sampling round draws from (§3.3).
func (t *Tracker[K]) Coverage() int64 {
	var g int64
	for _, iv := range t.ActiveIntervals() {
		g += iv.Width()
	}
	return g
}

// Splitters returns the buckets-1 splitter keys: each splitter's candidate
// key (the key ranked closest to its target among all keys seen, §3.3
// step 5). ok is false if some splitter never saw any probe — the caller
// should then run another round rather than partition blind.
func (t *Tracker[K]) Splitters() (keys []K, ok bool) {
	keys = make([]K, len(t.targets))
	ok = true
	for i := range t.targets {
		if !t.hasCand[i] {
			ok = false
			continue
		}
		keys[i] = t.candidate[i]
	}
	return keys, ok
}

// Finalized reports whether splitter i is finalized.
func (t *Tracker[K]) Finalized(i int) bool { return t.finalized[i] }

// CandidateRank returns the global rank of splitter i's current candidate
// key (valid only if a candidate exists).
func (t *Tracker[K]) CandidateRank(i int) (int64, bool) {
	return t.candRank[i], t.hasCand[i]
}
