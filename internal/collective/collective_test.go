package collective

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"slices"
	"testing"
	"testing/quick"
	"time"

	"hssort/internal/comm"
)

// worldSizes exercises powers of two, odd sizes, and the trivial world.
var worldSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func runWorld(t *testing.T, p int, fn func(c *comm.Comm) error) {
	t.Helper()
	w := comm.NewWorld(p, comm.WithTimeout(10*time.Second))
	if err := w.Run(fn); err != nil {
		t.Fatalf("p=%d: %v", p, err)
	}
}

func TestBarrier(t *testing.T) {
	for _, p := range worldSizes {
		// A barrier between two phases forces phase-1 sends to precede
		// phase-2 receives; correctness here is simply termination.
		runWorld(t, p, func(c *comm.Comm) error {
			for i := 0; i < 3; i++ {
				if err := Barrier(c, comm.Tag(100+i)); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, p := range worldSizes {
		for root := 0; root < p; root++ {
			want := []int64{10, 20, 30, int64(root)}
			runWorld(t, p, func(c *comm.Comm) error {
				var in []int64
				if c.Rank() == root {
					in = slices.Clone(want)
				}
				got, err := Bcast(c, root, 1, in)
				if err != nil {
					return err
				}
				if !slices.Equal(got, want) {
					return fmt.Errorf("rank %d got %v", c.Rank(), got)
				}
				return nil
			})
		}
	}
}

func TestBcastValue(t *testing.T) {
	runWorld(t, 5, func(c *comm.Comm) error {
		var v string
		if c.Rank() == 2 {
			v = "hello"
		}
		got, err := BcastValue(c, 2, 1, v)
		if err != nil {
			return err
		}
		if got != "hello" {
			return fmt.Errorf("rank %d got %q", c.Rank(), got)
		}
		return nil
	})
}

func TestBcastEmptySlice(t *testing.T) {
	runWorld(t, 4, func(c *comm.Comm) error {
		var in []int64
		if c.Rank() == 0 {
			in = []int64{}
		}
		got, err := Bcast(c, 0, 1, in)
		if err != nil {
			return err
		}
		if len(got) != 0 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
}

func TestReduceSum(t *testing.T) {
	for _, p := range worldSizes {
		for root := 0; root < p; root += max(1, p/3) {
			runWorld(t, p, func(c *comm.Comm) error {
				data := []int64{int64(c.Rank()), 1, int64(c.Rank() * 2)}
				got, err := Reduce(c, root, 1, data, SumInt64)
				if err != nil {
					return err
				}
				if c.Rank() != root {
					if got != nil {
						return errors.New("non-root got non-nil reduction")
					}
					return nil
				}
				s := int64(p * (p - 1) / 2)
				want := []int64{s, int64(p), 2 * s}
				if !slices.Equal(got, want) {
					return fmt.Errorf("root got %v, want %v", got, want)
				}
				return nil
			})
		}
	}
}

func TestAllReduce(t *testing.T) {
	const p = 6
	runWorld(t, p, func(c *comm.Comm) error {
		got, err := AllReduce(c, 1, []int64{1, int64(c.Rank())}, SumInt64)
		if err != nil {
			return err
		}
		want := []int64{p, p * (p - 1) / 2}
		if !slices.Equal(got, want) {
			return fmt.Errorf("rank %d got %v, want %v", c.Rank(), got, want)
		}
		return nil
	})
}

func TestGathervAllSizes(t *testing.T) {
	for _, p := range worldSizes {
		for root := 0; root < p; root += max(1, p/2) {
			runWorld(t, p, func(c *comm.Comm) error {
				// Rank r contributes r+1 copies of r: variable lengths.
				mine := make([]int64, c.Rank()+1)
				for i := range mine {
					mine[i] = int64(c.Rank())
				}
				parts, err := Gatherv(c, root, 1, mine)
				if err != nil {
					return err
				}
				if c.Rank() != root {
					if parts != nil {
						return errors.New("non-root got parts")
					}
					return nil
				}
				if len(parts) != p {
					return fmt.Errorf("got %d parts", len(parts))
				}
				for r, pt := range parts {
					if len(pt) != r+1 {
						return fmt.Errorf("part %d has len %d", r, len(pt))
					}
					for _, v := range pt {
						if v != int64(r) {
							return fmt.Errorf("part %d contains %d", r, v)
						}
					}
				}
				return nil
			})
		}
	}
}

func TestGatherFlat(t *testing.T) {
	const p = 4
	runWorld(t, p, func(c *comm.Comm) error {
		flat, err := GatherFlat(c, 0, 1, []int{c.Rank() * 10, c.Rank()*10 + 1})
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		want := []int{0, 1, 10, 11, 20, 21, 30, 31}
		if !slices.Equal(flat, want) {
			return fmt.Errorf("got %v, want %v", flat, want)
		}
		return nil
	})
}

func TestScatterv(t *testing.T) {
	const p = 5
	runWorld(t, p, func(c *comm.Comm) error {
		var parts [][]int64
		if c.Rank() == 1 {
			parts = make([][]int64, p)
			for i := range parts {
				parts[i] = []int64{int64(i * 100)}
			}
		}
		mine, err := Scatterv(c, 1, 1, parts)
		if err != nil {
			return err
		}
		if len(mine) != 1 || mine[0] != int64(c.Rank()*100) {
			return fmt.Errorf("rank %d got %v", c.Rank(), mine)
		}
		return nil
	})
}

func TestAllgatherv(t *testing.T) {
	const p = 6
	runWorld(t, p, func(c *comm.Comm) error {
		parts, err := Allgatherv(c, 1, []int{c.Rank(), c.Rank()})
		if err != nil {
			return err
		}
		for r, pt := range parts {
			if !slices.Equal(pt, []int{r, r}) {
				return fmt.Errorf("rank %d sees part %d = %v", c.Rank(), r, pt)
			}
		}
		return nil
	})
}

func TestAllToAllv(t *testing.T) {
	for _, p := range worldSizes {
		runWorld(t, p, func(c *comm.Comm) error {
			parts := make([][]int64, p)
			for dst := range parts {
				// Rank r sends {r*1000 + dst} repeated (dst+1) times.
				parts[dst] = make([]int64, dst+1)
				for i := range parts[dst] {
					parts[dst][i] = int64(c.Rank()*1000 + dst)
				}
			}
			got, err := AllToAllv(c, 1, parts)
			if err != nil {
				return err
			}
			for src, pt := range got {
				if len(pt) != c.Rank()+1 {
					return fmt.Errorf("from %d: len %d, want %d", src, len(pt), c.Rank()+1)
				}
				for _, v := range pt {
					if v != int64(src*1000+c.Rank()) {
						return fmt.Errorf("from %d: got %d", src, v)
					}
				}
			}
			return nil
		})
	}
}

func TestAllToAllvWrongPartCount(t *testing.T) {
	w := comm.NewWorld(2, comm.WithTimeout(time.Second))
	err := w.Run(func(c *comm.Comm) error {
		_, err := AllToAllv(c, 1, [][]int64{{1}})
		if err == nil {
			return errors.New("no error for wrong part count")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedBcastMatchesBcast(t *testing.T) {
	for _, p := range worldSizes {
		for _, n := range []int{0, 1, 100, 5000} {
			want := make([]int64, n)
			for i := range want {
				want[i] = int64(i * 3)
			}
			runWorld(t, p, func(c *comm.Comm) error {
				var in []int64
				if c.Rank() == 0 {
					in = slices.Clone(want)
				}
				got, err := PipelinedBcast(c, 0, 1, in, 64)
				if err != nil {
					return err
				}
				if !slices.Equal(got, want) {
					return fmt.Errorf("p=%d n=%d rank %d: wrong data", p, n, c.Rank())
				}
				return nil
			})
		}
	}
}

func TestPipelinedBcastNonzeroRoot(t *testing.T) {
	const p = 7
	want := []int64{5, 6, 7, 8, 9}
	runWorld(t, p, func(c *comm.Comm) error {
		var in []int64
		if c.Rank() == 3 {
			in = slices.Clone(want)
		}
		got, err := PipelinedBcast(c, 3, 1, in, 2)
		if err != nil {
			return err
		}
		if !slices.Equal(got, want) {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
}

func TestPipelinedReduceMatchesReduce(t *testing.T) {
	for _, p := range worldSizes {
		for _, n := range []int{1, 63, 64, 1000} {
			runWorld(t, p, func(c *comm.Comm) error {
				data := make([]int64, n)
				for i := range data {
					data[i] = int64(c.Rank() + i)
				}
				got, err := PipelinedReduce(c, 0, 1, data, SumInt64, 64)
				if err != nil {
					return err
				}
				if c.Rank() != 0 {
					if got != nil {
						return errors.New("non-root got data")
					}
					return nil
				}
				rankSum := int64(p * (p - 1) / 2)
				for i, v := range got {
					want := rankSum + int64(i*p)
					if v != want {
						return fmt.Errorf("p=%d n=%d elem %d: got %d want %d", p, n, i, v, want)
					}
				}
				return nil
			})
		}
	}
}

func TestPipelinedReduceNonzeroRoot(t *testing.T) {
	const p = 5
	runWorld(t, p, func(c *comm.Comm) error {
		got, err := PipelinedReduce(c, 2, 1, []int64{1, 1}, SumInt64, 1)
		if err != nil {
			return err
		}
		if c.Rank() == 2 && !slices.Equal(got, []int64{p, p}) {
			return fmt.Errorf("root got %v", got)
		}
		return nil
	})
}

func TestGroupBasics(t *testing.T) {
	const p = 8
	runWorld(t, p, func(c *comm.Comm) error {
		if c.Rank()%2 != 0 {
			return nil // odd ranks sit out
		}
		g, err := NewGroup(c, []int{0, 2, 4, 6})
		if err != nil {
			return err
		}
		if g.Size() != 4 || g.Rank() != c.Rank()/2 {
			return fmt.Errorf("rank %d: group rank %d size %d", c.Rank(), g.Rank(), g.Size())
		}
		if g.ParentRank(g.Rank()) != c.Rank() {
			return errors.New("ParentRank broken")
		}
		// Collectives over the group.
		got, err := AllReduce(g, 50, []int64{1}, SumInt64)
		if err != nil {
			return err
		}
		if got[0] != 4 {
			return fmt.Errorf("group allreduce got %d", got[0])
		}
		return nil
	})
}

func TestGroupRejectsBadMembership(t *testing.T) {
	runWorld(t, 4, func(c *comm.Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if _, err := NewGroup(c, []int{1, 2}); err == nil {
			return errors.New("group without caller accepted")
		}
		if _, err := NewGroup(c, []int{0, 0, 1}); err == nil {
			return errors.New("duplicate member accepted")
		}
		if _, err := NewGroup(c, []int{0, 9}); err == nil {
			return errors.New("out-of-range member accepted")
		}
		return nil
	})
}

func TestGroupAnySourceRejected(t *testing.T) {
	runWorld(t, 2, func(c *comm.Comm) error {
		g, err := NewGroup(c, []int{0, 1})
		if err != nil {
			return err
		}
		if _, err := g.Recv(comm.AnySource, 1); err == nil {
			return errors.New("AnySource accepted in group")
		}
		return nil
	})
}

func TestGroupIsolation(t *testing.T) {
	// Two disjoint groups run the same collective with group-distinct
	// tags concurrently; results must not bleed across groups.
	const p = 8
	runWorld(t, p, func(c *comm.Comm) error {
		color := c.Rank() % 2
		var members []int
		for r := color; r < p; r += 2 {
			members = append(members, r)
		}
		g, err := NewGroup(c, members)
		if err != nil {
			return err
		}
		tag := comm.Tag(100 + color)
		got, err := AllReduce(g, tag, []int64{int64(color + 1)}, SumInt64)
		if err != nil {
			return err
		}
		want := int64((color + 1) * 4)
		if got[0] != want {
			return fmt.Errorf("group %d got %d, want %d", color, got[0], want)
		}
		return nil
	})
}

// TestCollectivesProperty drives random collectives against sequential
// references.
func TestCollectivesProperty(t *testing.T) {
	f := func(seed uint32, pRaw, nRaw uint8) bool {
		p := int(pRaw%10) + 1
		n := int(nRaw%64) + 1
		root := int(seed) % p
		rng := rand.New(rand.NewPCG(uint64(seed), 9))
		inputs := make([][]int64, p)
		for r := range inputs {
			inputs[r] = make([]int64, n)
			for i := range inputs[r] {
				inputs[r][i] = rng.Int64N(1 << 30)
			}
		}
		want := make([]int64, n)
		for _, in := range inputs {
			SumInt64(want, in)
		}
		w := comm.NewWorld(p, comm.WithTimeout(10*time.Second))
		ok := true
		err := w.Run(func(c *comm.Comm) error {
			got, err := Reduce(c, root, 1, slices.Clone(inputs[c.Rank()]), SumInt64)
			if err != nil {
				return err
			}
			if c.Rank() == root && !slices.Equal(got, want) {
				ok = false
			}
			// And a pipelined reduce must agree.
			got2, err := PipelinedReduce(c, root, 2, slices.Clone(inputs[c.Rank()]), SumInt64, 7)
			if err != nil {
				return err
			}
			if c.Rank() == root && !slices.Equal(got2, want) {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBcastBinomialVsPipelined(b *testing.B) {
	const p = 16
	const n = 1 << 16
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	b.Run("binomial", func(b *testing.B) {
		w := comm.NewWorld(p)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = w.Run(func(c *comm.Comm) error {
				var in []int64
				if c.Rank() == 0 {
					in = data
				}
				_, err := Bcast(c, 0, 1, in)
				return err
			})
		}
	})
	b.Run("pipelined", func(b *testing.B) {
		w := comm.NewWorld(p)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = w.Run(func(c *comm.Comm) error {
				var in []int64
				if c.Rank() == 0 {
					in = data
				}
				_, err := PipelinedBcast(c, 0, 1, in, 4096)
				return err
			})
		}
	})
}
