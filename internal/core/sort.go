package core

import (
	"slices"
	"time"

	"hssort/internal/collective"
	"hssort/internal/comm"
	"hssort/internal/exchange"
	"hssort/internal/merge"
)

// Sort runs the full HSS pipeline on this rank's local keys and returns
// the rank's globally sorted partition: local sort → splitter
// determination → all-to-all exchange → k-way merge (§6.1.2). Every rank
// of the world must call Sort with the same Options. The input slice is
// sorted in place and its storage re-used; callers must not reuse it.
func Sort[K any](c *comm.Comm, local []K, opt Options[K]) ([]K, Stats, error) {
	opt, err := opt.withDefaults(c.Size())
	if err != nil {
		return nil, Stats{}, err
	}
	base := opt.BaseTag
	var stats Stats
	stats.Buckets = opt.Buckets

	// Phase 1: local sort (embarrassingly parallel, §6.1.2).
	t0 := time.Now()
	slices.SortFunc(local, opt.Cmp)
	localSort := time.Since(t0)

	// Global key count.
	nVec, err := collective.AllReduce(c, base+tagCount, []int64{int64(len(local))}, collective.SumInt64)
	if err != nil {
		return nil, stats, err
	}
	stats.N = nVec[0]

	// Phase 2: splitter determination.
	bytes0 := c.Counters().BytesSent
	t1 := time.Now()
	splitters, info, err := DetermineSplitters(c, local, stats.N, opt)
	if err != nil {
		return nil, stats, err
	}
	splitterTime := time.Since(t1)
	splitterBytes := c.Counters().BytesSent - bytes0
	stats.Rounds = info.Rounds
	stats.SamplePerRound = info.SamplePerRound
	stats.TotalSample = info.TotalSample

	// Phase 3: partition + all-to-all data exchange.
	bytes1 := c.Counters().BytesSent
	t2 := time.Now()
	runs := exchange.Partition(local, splitters, opt.Cmp)
	recv, err := exchange.Exchange(c, base+tagExchange, runs, opt.Owner)
	if err != nil {
		return nil, stats, err
	}
	exchangeTime := time.Since(t2)
	exchangeBytes := c.Counters().BytesSent - bytes1

	// Phase 4: merge received runs.
	t3 := time.Now()
	out := merge.KWay(recv, opt.Cmp)
	mergeTime := time.Since(t3)
	stats.LocalCount = len(out)

	// Aggregate stats: byte counts sum over ranks, phase times take the
	// max (BSP critical path), output counts give the imbalance.
	vec := []int64{
		splitterBytes,
		exchangeBytes,
		int64(localSort),
		int64(splitterTime),
		int64(exchangeTime),
		int64(mergeTime),
		int64(len(out)), // sum -> N
		int64(len(out)), // max -> hottest rank
	}
	agg, err := collective.AllReduce(c, base+tagStats, vec, func(dst, src []int64) {
		dst[0] += src[0]
		dst[1] += src[1]
		for i := 2; i <= 5; i++ {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
		dst[6] += src[6]
		if src[7] > dst[7] {
			dst[7] = src[7]
		}
	})
	if err != nil {
		return nil, stats, err
	}
	stats.SplitterBytes = agg[0]
	stats.ExchangeBytes = agg[1]
	stats.LocalSort = time.Duration(agg[2])
	stats.Splitter = time.Duration(agg[3])
	stats.Exchange = time.Duration(agg[4])
	stats.Merge = time.Duration(agg[5])
	if agg[6] > 0 {
		stats.Imbalance = float64(agg[7]) * float64(c.Size()) / float64(agg[6])
	} else {
		stats.Imbalance = 1
	}
	return out, stats, nil
}
