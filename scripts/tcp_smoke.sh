#!/usr/bin/env bash
# Multi-process transport smoke: launch 4 localhost worker processes via
# cmd/hssort's -launch convenience, sort a deterministic workload over
# real sockets, and assert the per-rank output digests are identical to
# the in-process sim oracle. This is the CI gate for the tcp backend's
# end-to-end correctness (wire codec, bootstrap, exchange, merge).
#
# Runs twice: once on int64 keys (fixed-size wire records) and once on
# variable-length byte-string keys (the hsswire/2 varlen codec and the
# prefix-code plane).
#
# Usage: scripts/tcp_smoke.sh [keys-per-rank]
set -euo pipefail
cd "$(dirname "$0")/.."

N="${1:-50000}"
PROCS=4

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/hssort" ./cmd/hssort

# The launcher reserves the coordinator port before rank 0 rebinds it; a
# stray localhost process can lose that race, so retry once.
run_tcp() {
  "$tmp/hssort" -transport tcp -launch "local:$PROCS" "$@" \
    | sed -n 's/^\[rank [0-9]*\] \(digest .*\)/\1/p' | sort > "$tmp/tcp.digests"
}

check() {
  local label="$1"; shift
  "$tmp/hssort" -p "$PROCS" "$@" | grep '^digest' | sort > "$tmp/sim.digests"
  run_tcp "$@" || { echo "retrying after bootstrap race" >&2; run_tcp "$@"; }
  diff -u "$tmp/sim.digests" "$tmp/tcp.digests"
  echo "tcp == sim ($label): rank-identical output across $PROCS worker processes"
}

check "int64/powerskew, $N keys/rank" -n "$N" -dist powerskew -stream -eps 0.05 -seed 7 -digest
check "bytes/urllike, $((N / 5)) keys/rank" -n "$((N / 5))" -keys bytes -dist urllike -stream -eps 0.05 -seed 7 -digest
