package hssort

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"strings"
	"testing"

	"hssort/internal/dist"
)

// spillPerRank keys per rank in the equivalence matrix. At 8 bytes per
// int64 key one rank holds spillPerRank*8 bytes, so the quarter budget
// below forces real spilling while staying big enough to cross every
// kernel's serial cutoff when Workers > 1.
const spillPerRank = 20000

// spillBudgets returns the per-rank MemoryBudget values the matrix
// sweeps for a rank holding rankBytes of keys: a quarter of the rank's
// data (the acceptance point) and a heavy squeeze at an eighth. Below
// ~an eighth the budget drops under the merge's structural floor — one
// minimum-size read-back frame per spilled segment — and the peak
// legitimately overshoots (see Stats.PeakResidentBytes).
func spillBudgets(rankBytes int64) []int64 {
	return []int64{rankBytes / 4, rankBytes / 8}
}

// TestSpillEquivalence is the out-of-core plane's acceptance gate: on
// all three transports, with both exchange planes, both compute planes
// and serial + full-width worker pools, a sort with MemoryBudget set
// must produce rank-identical output to the unbudgeted in-memory sort,
// report SpilledBytes > 0 (the budget genuinely engaged) and keep
// PeakResidentBytes within the budget.
func TestSpillEquivalence(t *testing.T) {
	const p = 4
	rankBytes := int64(spillPerRank) * 8
	workerSweepVals := []int{1, runtime.GOMAXPROCS(0)}
	slices.Sort(workerSweepVals)
	workerSweepVals = slices.Compact(workerSweepVals)

	for _, tr := range []Transport{TransportSim, TransportInproc, TransportTCP} {
		for _, streaming := range []bool{false, true} {
			for _, cp := range []CodePath{CodePathOff, CodePathOn} {
				for _, workers := range workerSweepVals {
					plane := "materializing"
					if streaming {
						plane = "streaming"
					}
					t.Run(fmt.Sprintf("%s/%s/%s/workers=%d", tr, plane, cp, workers), func(t *testing.T) {
						shards := dist.Spec{Kind: dist.PowerSkew, Min: 0, Max: 1 << 40}.Shards(spillPerRank, p, 83)

						cfg := Config{Procs: p, Algorithm: HSS, Epsilon: 0.1, Seed: 3, Transport: tr, CodePath: cp, Workers: workers}
						if streaming {
							cfg.StreamExchange = true
							cfg.ChunkKeys = 1024
						}

						wantOuts, wantStats, err := Sort(cfg, cloneShards(shards))
						if err != nil {
							t.Fatalf("in-memory baseline: %v", err)
						}
						if wantStats.SpilledBytes != 0 || wantStats.PeakResidentBytes != 0 {
							t.Fatalf("unbudgeted sort reports spill stats: spilled=%d peak=%d", wantStats.SpilledBytes, wantStats.PeakResidentBytes)
						}

						for _, budget := range spillBudgets(rankBytes) {
							budget := budget
							t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
								bcfg := cfg
								bcfg.MemoryBudget = budget
								outs, stats, err := Sort(bcfg, cloneShards(shards))
								if err != nil {
									t.Fatalf("budgeted sort: %v", err)
								}
								for r := range outs {
									if !slices.Equal(outs[r], wantOuts[r]) {
										t.Fatalf("rank %d output diverges from in-memory sort (len %d vs %d)", r, len(outs[r]), len(wantOuts[r]))
									}
								}
								if stats.SpilledBytes == 0 {
									t.Fatalf("budget %d (rank data %d bytes): SpilledBytes = 0, the out-of-core plane never engaged", budget, rankBytes)
								}
								if stats.SpillFileBytes == 0 || stats.SpillReads == 0 {
									t.Fatalf("inconsistent spill stats: %+v", stats)
								}
								if stats.PeakResidentBytes == 0 || stats.PeakResidentBytes > budget {
									t.Fatalf("PeakResidentBytes = %d, want in (0, budget %d]", stats.PeakResidentBytes, budget)
								}
							})
						}
					})
				}
			}
		}
	}
}

// TestSpillEquivalenceAlgorithms sweeps the remaining budget-capable
// algorithms (the HSS baseline is covered by the full matrix above) at
// the quarter budget on both exchange planes: identical output,
// nonzero spill traffic.
func TestSpillEquivalenceAlgorithms(t *testing.T) {
	const p = 4
	budget := int64(spillPerRank) * 8 / 4
	algs := []struct {
		name string
		cfg  Config
		kind dist.Kind
	}{
		{"hss-one-round", Config{Procs: p, Algorithm: HSSOneRound, Epsilon: 0.1, Seed: 5}, dist.Exponential},
		{"hss-theoretical", Config{Procs: p, Algorithm: HSSTheoretical, Epsilon: 0.2, Seed: 7}, dist.Uniform},
		{"samplesort-regular", Config{Procs: p, Algorithm: SampleSortRegular, Epsilon: 0.1, Seed: 9}, dist.DuplicateHeavy},
		{"samplesort-random", Config{Procs: p, Algorithm: SampleSortRandom, Epsilon: 0.1, Seed: 11}, dist.PowerSkew},
		{"histogramsort", Config{Procs: p, Algorithm: HistogramSort, Epsilon: 0.1, Seed: 13}, dist.Exponential},
		{"node-hss", Config{Procs: p, Algorithm: NodeHSS, CoresPerNode: 2, Epsilon: 0.1, Seed: 15}, dist.Uniform},
	}
	for _, tc := range algs {
		for _, streaming := range []bool{false, true} {
			plane := "materializing"
			if streaming {
				plane = "streaming"
			}
			t.Run(tc.name+"/"+plane, func(t *testing.T) {
				shards := dist.Spec{Kind: tc.kind, Min: 0, Max: 1 << 40, Distinct: 64}.Shards(spillPerRank, p, 97)
				cfg := tc.cfg
				if streaming {
					cfg.StreamExchange = true
					cfg.ChunkKeys = 1024
				}
				wantOuts, _, err := Sort(cfg, cloneShards(shards))
				if err != nil {
					t.Fatalf("in-memory baseline: %v", err)
				}
				bcfg := cfg
				bcfg.MemoryBudget = budget
				outs, stats, err := Sort(bcfg, cloneShards(shards))
				if err != nil {
					t.Fatalf("budgeted sort: %v", err)
				}
				for r := range outs {
					if !slices.Equal(outs[r], wantOuts[r]) {
						t.Fatalf("rank %d output diverges from in-memory sort", r)
					}
				}
				if stats.SpilledBytes == 0 {
					t.Fatalf("SpilledBytes = 0 at budget %d", budget)
				}
				if stats.PeakResidentBytes > budget {
					t.Fatalf("PeakResidentBytes = %d > budget %d", stats.PeakResidentBytes, budget)
				}
			})
		}
	}
}

// TestSpillEquivalenceKV pins the record plane: an out-of-core KV sort
// returns the identical key sequence per rank and preserves the
// key→payload association as a multiset (records with equal keys may
// legally permute among themselves).
func TestSpillEquivalenceKV(t *testing.T) {
	const p, perRank = 4, 20000
	budget := int64(perRank) * 16 / 4 // KV[int64,int32] is 16 bytes padded
	keyShards := dist.Spec{Kind: dist.DuplicateHeavy, Min: 0, Max: 1 << 30, Distinct: 512}.Shards(perRank, p, 41)
	mk := func() [][]KV[int64, int32] {
		shards := make([][]KV[int64, int32], p)
		for r, ks := range keyShards {
			shards[r] = make([]KV[int64, int32], len(ks))
			for i, k := range ks {
				shards[r][i] = KV[int64, int32]{Key: k, Val: int32(r*perRank + i)}
			}
		}
		return shards
	}
	for _, streaming := range []bool{false, true} {
		plane := "materializing"
		if streaming {
			plane = "streaming"
		}
		t.Run(plane, func(t *testing.T) {
			cfg := Config{Procs: p, Algorithm: HSS, Epsilon: 0.1, Seed: 21}
			if streaming {
				cfg.StreamExchange = true
				cfg.ChunkKeys = 1024
			}
			wantOuts, _, err := SortKV(cfg, mk())
			if err != nil {
				t.Fatalf("in-memory baseline: %v", err)
			}
			bcfg := cfg
			bcfg.MemoryBudget = budget
			outs, stats, err := SortKV(bcfg, mk())
			if err != nil {
				t.Fatalf("budgeted sort: %v", err)
			}
			if stats.SpilledBytes == 0 {
				t.Fatalf("SpilledBytes = 0 at budget %d", budget)
			}
			var got, want []KV[int64, int32]
			for r := range outs {
				if len(outs[r]) != len(wantOuts[r]) {
					t.Fatalf("rank %d holds %d records, in-memory sort held %d", r, len(outs[r]), len(wantOuts[r]))
				}
				for i := range outs[r] {
					if outs[r][i].Key != wantOuts[r][i].Key {
						t.Fatalf("rank %d pos %d: key %d, in-memory sort had %d", r, i, outs[r][i].Key, wantOuts[r][i].Key)
					}
				}
				got = append(got, outs[r]...)
				want = append(want, wantOuts[r]...)
			}
			full := func(a, b KV[int64, int32]) int {
				if a.Key != b.Key {
					if a.Key < b.Key {
						return -1
					}
					return 1
				}
				return int(a.Val - b.Val)
			}
			slices.SortFunc(got, full)
			slices.SortFunc(want, full)
			if !slices.Equal(got, want) {
				t.Fatal("payload multiset diverges: some key lost or duplicated its payload")
			}
		})
	}
}

// TestSpillDirLifecycle pins the on-disk contract of an explicit
// Config.SpillDir: per-rank subdirectories appear under it, and Close
// removes them (no orphaned run files survive the engine).
func TestSpillDirLifecycle(t *testing.T) {
	const p, perRank = 4, 20000
	dir := t.TempDir()
	shards := dist.Spec{Kind: dist.Uniform, Min: 0, Max: 1 << 40}.Shards(perRank, p, 3)
	s, err := New[int64](Config{Procs: p, Algorithm: HSS, Epsilon: 0.1, MemoryBudget: int64(perRank) * 8 / 4, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != p {
		t.Fatalf("engine claimed %d rank directories under SpillDir, want %d", len(ents), p)
	}
	for _, e := range ents {
		if !strings.HasPrefix(e.Name(), "hssort-rank-") {
			t.Fatalf("unexpected entry %q under SpillDir", e.Name())
		}
	}
	outs, stats, err := s.Sort(t.Context(), cloneShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, shards, outs)
	if stats.SpilledBytes == 0 {
		t.Fatal("SpilledBytes = 0, the out-of-core plane never engaged")
	}
	// After the sort returns, every run file has been consumed and
	// removed — only the (empty) rank directories remain.
	var leftover []string
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			leftover = append(leftover, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(leftover) != 0 {
		t.Fatalf("run files leaked after sort: %v", leftover)
	}
	s.Close()
	if ents, err = os.ReadDir(dir); err != nil {
		t.Fatal(err)
	} else if len(ents) != 0 {
		t.Fatalf("Close left %d entries under SpillDir", len(ents))
	}
}

// TestSpillConfigValidation pins the constructor's out-of-core
// admission matrix: every rejected shape fails at New, not mid-sort.
func TestSpillConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		frag string
	}{
		{"negative-budget", Config{Procs: 2, MemoryBudget: -1}, "MemoryBudget -1 < 0"},
		{"dir-without-budget", Config{Procs: 2, SpillDir: "/tmp/x"}, "SpillDir is set but MemoryBudget is 0"},
		{"tagged", Config{Procs: 2, MemoryBudget: 1 << 20, TagDuplicates: true}, "incompatible with TagDuplicates"},
		{"bitonic", Config{Procs: 2, Algorithm: Bitonic, MemoryBudget: 1 << 20}, "not supported by bitonic"},
		{"radix", Config{Procs: 2, Algorithm: Radix, MemoryBudget: 1 << 20}, "not supported by radix"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New[int64](tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("New = %v, want error containing %q", err, tc.frag)
			}
		})
	}
	t.Run("pointered-key", func(t *testing.T) {
		_, err := NewFunc[string](Config{Procs: 2, MemoryBudget: 1 << 20}, func(a, b string) int { return strings.Compare(a, b) })
		if err == nil || !strings.Contains(err.Error(), "fixed-size key type") {
			t.Fatalf("New = %v, want fixed-size key type error", err)
		}
	})
	t.Run("prefix-plane", func(t *testing.T) {
		_, err := NewBytes(Config{Procs: 2, MemoryBudget: 1 << 20})
		if err == nil || !strings.Contains(err.Error(), "prefix plane") {
			t.Fatalf("NewBytes = %v, want prefix-plane rejection", err)
		}
	})
}

// TestSpillStatsSnapshot pins the serialization of the new counters:
// present and named when nonzero, omitted when the plane is off.
func TestSpillStatsSnapshot(t *testing.T) {
	st := Stats{SpilledBytes: 7, SpillFileBytes: 5, SpillReads: 3, PeakResidentBytes: 11}
	b, err := st.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"spilledBytes", "spillFileBytes", "spillReads", "peakResidentBytes"} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("snapshot %s lacks %q", b, key)
		}
	}
	if b, err = (Stats{}).MarshalJSON(); err != nil {
		t.Fatal(err)
	} else if strings.Contains(string(b), "spill") {
		t.Fatalf("zero stats still serialize spill fields: %s", b)
	}
}
