package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilAndZeroPoolsAreSerial(t *testing.T) {
	var zero Pool
	var nilPool *Pool
	for _, p := range []*Pool{nil, &zero, New(0), New(-3), New(1)} {
		if w := p.Workers(); w != 1 {
			t.Fatalf("Workers() = %d, want 1", w)
		}
	}
	order := []int{}
	nilPool.Do(4, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial Do out of order: %v", order)
		}
	}
	if c := nilPool.Counters(); c != (Counters{}) {
		t.Fatalf("nil pool counters = %+v", c)
	}
}

func TestDoRunsEveryTaskExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		const n = 1000
		var hits [n]atomic.Int32
		p.Do(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
		if c := p.Counters(); c.Tasks != n {
			t.Fatalf("workers=%d: Tasks = %d, want %d", workers, c.Tasks, n)
		}
	}
}

func TestDoJoinsBeforeReturn(t *testing.T) {
	p := New(4)
	before := runtime.NumGoroutine()
	var done atomic.Int32
	p.Do(64, func(i int) {
		time.Sleep(100 * time.Microsecond)
		done.Add(1)
	})
	if got := done.Load(); got != 64 {
		t.Fatalf("Do returned with %d/64 tasks done", got)
	}
	// Fork-join: no worker goroutines survive the region.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("worker goroutines leaked: %d > %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDoEmptyAndSingle(t *testing.T) {
	p := New(8)
	p.Do(0, func(i int) { t.Fatal("task ran for n=0") })
	ran := 0
	p.Do(1, func(i int) { ran++ })
	if ran != 1 {
		t.Fatalf("n=1 ran %d tasks", ran)
	}
	if c := p.Counters(); c.Spawned != 0 {
		t.Fatalf("n<=1 spawned %d goroutines", c.Spawned)
	}
}

func TestDefaultBudget(t *testing.T) {
	gm := runtime.GOMAXPROCS(0)
	if got := Default(1); got != gm {
		t.Fatalf("Default(1) = %d, want GOMAXPROCS %d", got, gm)
	}
	if got := Default(gm * 2); got != 1 {
		t.Fatalf("Default(%d) = %d, want 1", gm*2, got)
	}
	if got := Default(0); got != gm {
		t.Fatalf("Default(0) = %d, want %d", got, gm)
	}
}

func TestBlocks(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 4}, {4, 4}, {10, 3}, {1000, 7}, {5, 1},
	} {
		bs := Blocks(tc.n, tc.parts)
		if tc.n == 0 {
			if bs != nil {
				t.Fatalf("Blocks(0, %d) = %v", tc.parts, bs)
			}
			continue
		}
		pos := 0
		for _, b := range bs {
			if b.Lo != pos || b.Hi < b.Lo {
				t.Fatalf("Blocks(%d, %d): non-covering %v", tc.n, tc.parts, bs)
			}
			pos = b.Hi
		}
		if pos != tc.n {
			t.Fatalf("Blocks(%d, %d) covers %d", tc.n, tc.parts, pos)
		}
	}
}
