// Package bitonic implements Batcher's bitonic sort on a hypercube of
// ranks — the merge-based baseline of §4.2. Every key moves Θ(log² p)
// times (once per compare-split stage), which is why the paper dismisses
// merge-based sorts when N >> p: the data movement dwarfs the one-shot
// all-to-all of splitter-based algorithms. Implemented to make that
// comparison measurable.
package bitonic
