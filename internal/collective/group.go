package collective

import (
	"fmt"
	"slices"

	"hssort/internal/comm"
)

// Group is a sub-communicator: a view of a subset of a parent endpoint's
// ranks, renumbered 0..len(members)-1. All collectives in this package
// work over a Group unchanged, which is how the two-level node
// partitioning (§6.1) runs within-node sample sort across the cores of one
// node.
//
// Group traffic shares the parent's tag space; callers must give each
// concurrently active group collective a distinct tag (the node-level code
// derives tags from the group's node index).
type Group struct {
	parent  comm.Endpoint
	members []int // parent ranks, ascending
	myIdx   int
}

// NewGroup creates a group over the given parent ranks. members must
// contain the caller's parent rank; duplicates are rejected. The slice is
// copied and sorted, so every member constructs an identical numbering.
func NewGroup(parent comm.Endpoint, members []int) (*Group, error) {
	ms := slices.Clone(members)
	slices.Sort(ms)
	for i := 1; i < len(ms); i++ {
		if ms[i] == ms[i-1] {
			return nil, fmt.Errorf("collective: duplicate group member %d", ms[i])
		}
	}
	for _, m := range ms {
		if m < 0 || m >= parent.Size() {
			return nil, fmt.Errorf("collective: group member %d outside parent size %d", m, parent.Size())
		}
	}
	idx := slices.Index(ms, parent.Rank())
	if idx < 0 {
		return nil, fmt.Errorf("collective: caller rank %d not in group %v", parent.Rank(), ms)
	}
	return &Group{parent: parent, members: ms, myIdx: idx}, nil
}

var _ comm.Endpoint = (*Group)(nil)
var _ comm.StreamEndpoint = (*Group)(nil)

// Rank returns the caller's rank within the group.
func (g *Group) Rank() int { return g.myIdx }

// Size returns the number of group members.
func (g *Group) Size() int { return len(g.members) }

// Members returns the parent ranks of the group in group-rank order.
func (g *Group) Members() []int { return slices.Clone(g.members) }

// ParentRank translates a group rank to the parent rank.
func (g *Group) ParentRank(groupRank int) int { return g.members[groupRank] }

// Send delivers payload to the group rank dst via the parent endpoint.
func (g *Group) Send(dst int, tag comm.Tag, payload any, bytes int64) error {
	if dst < 0 || dst >= len(g.members) {
		return fmt.Errorf("collective: group send to invalid rank %d (size %d)", dst, len(g.members))
	}
	return g.parent.Send(g.members[dst], tag, payload, bytes)
}

// Recv receives the next message from group rank src on tag. AnySource is
// not supported within a group: matching by parent source would admit
// messages from non-members sharing the tag.
func (g *Group) Recv(src int, tag comm.Tag) (comm.Message, error) {
	if src == comm.AnySource {
		return comm.Message{}, fmt.Errorf("collective: AnySource recv is not supported within a group")
	}
	if src < 0 || src >= len(g.members) {
		return comm.Message{}, fmt.Errorf("collective: group recv from invalid rank %d (size %d)", src, len(g.members))
	}
	m, err := g.parent.Recv(g.members[src], tag)
	if err != nil {
		return comm.Message{}, err
	}
	m.Src = src // translate the envelope into group numbering
	return m, nil
}

// streamParent returns the parent as a StreamEndpoint, or an error if the
// parent does not support posted receives.
func (g *Group) streamParent() (comm.StreamEndpoint, error) {
	sp, ok := g.parent.(comm.StreamEndpoint)
	if !ok {
		return nil, fmt.Errorf("collective: group parent %T does not support streaming receives", g.parent)
	}
	return sp, nil
}

// TryRecv returns the next buffered message from group rank src on tag
// without blocking. Unlike Recv, src may be AnySource, under the same
// members-only tag precondition as RecvAny: a buffered message from a
// non-member is reported as an error.
func (g *Group) TryRecv(src int, tag comm.Tag) (comm.Message, bool, error) {
	sp, err := g.streamParent()
	if err != nil {
		return comm.Message{}, false, err
	}
	if src == comm.AnySource {
		m, ok, err := sp.TryRecv(comm.AnySource, tag)
		if err != nil || !ok {
			return comm.Message{}, false, err
		}
		idx := slices.Index(g.members, m.Src)
		if idx < 0 {
			return comm.Message{}, false, fmt.Errorf("collective: group tag %d received message from non-member rank %d", tag, m.Src)
		}
		m.Src = idx
		return m, true, nil
	}
	if src < 0 || src >= len(g.members) {
		return comm.Message{}, false, fmt.Errorf("collective: group probe of invalid rank %d (size %d)", src, len(g.members))
	}
	m, ok, err := sp.TryRecv(g.members[src], tag)
	if err != nil || !ok {
		return comm.Message{}, false, err
	}
	m.Src = src
	return m, true, nil
}

// RecvAny blocks for the next message with the given tag from any group
// member. It requires the tag to be used exclusively by group members: a
// matching message from a non-member is a tag-discipline bug in the
// caller and is reported as an error (it cannot be requeued).
func (g *Group) RecvAny(tag comm.Tag) (comm.Message, error) {
	m, err := g.parent.Recv(comm.AnySource, tag)
	if err != nil {
		return comm.Message{}, err
	}
	idx := slices.Index(g.members, m.Src)
	if idx < 0 {
		return comm.Message{}, fmt.Errorf("collective: group tag %d received message from non-member rank %d", tag, m.Src)
	}
	m.Src = idx
	return m, nil
}
