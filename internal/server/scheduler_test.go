package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hssort"
)

// testJob builds a bare job for scheduler-level tests (no payload, no
// engine involvement).
func testJob(tenant string) *job {
	return &job{tenant: tenant, done: make(chan struct{}), status: statusQueued}
}

// TestSchedulerQueueFull checks admission control: submissions past the
// queue bound are refused with the typed quota error, and the refusal
// carries the queue numbers.
func TestSchedulerQueueFull(t *testing.T) {
	gate := make(chan struct{})
	s := newScheduler(2, 1, 1, func(j *job) { close(j.done) })
	s.testGate = func(*job) { <-gate }
	defer func() {
		close(gate)
		s.beginDrain()
		s.wait()
	}()

	// First job is dequeued and held at the gate; it no longer occupies
	// a queue slot.
	held := testJob("a")
	if err := s.submit(held); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { _, running := s.depth(); return running == 1 })

	if err := s.submit(testJob("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.submit(testJob("b")); err != nil {
		t.Fatal(err)
	}
	err := s.submit(testJob("c"))
	var quota *hssort.QuotaExceededError
	if !errors.As(err, &quota) {
		t.Fatalf("submit into a full queue returned %v, want *hssort.QuotaExceededError", err)
	}
	if quota.Tenant != "c" || quota.Queued != 2 || quota.Capacity != 2 {
		t.Errorf("quota error carries %+v, want tenant c, 2/2", quota)
	}
}

// TestSchedulerTenantQuota checks the per-tenant running cap: with
// plenty of free workers, one tenant never runs more than quota jobs at
// once, while a second tenant's jobs are unaffected.
func TestSchedulerTenantQuota(t *testing.T) {
	var mu sync.Mutex
	running := make(map[string]int)
	peak := make(map[string]int)
	s := newScheduler(64, 2, 8, func(j *job) {
		mu.Lock()
		running[j.tenant]++
		if running[j.tenant] > peak[j.tenant] {
			peak[j.tenant] = running[j.tenant]
		}
		mu.Unlock()
		time.Sleep(2 * time.Millisecond)
		mu.Lock()
		running[j.tenant]--
		mu.Unlock()
		close(j.done)
	})

	var jobs []*job
	for i := 0; i < 10; i++ {
		jobs = append(jobs, testJob("a"), testJob("b"))
	}
	for _, j := range jobs {
		if err := s.submit(j); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range jobs {
		<-j.done
	}
	s.beginDrain()
	s.wait()

	mu.Lock()
	defer mu.Unlock()
	for _, tenant := range []string{"a", "b"} {
		if peak[tenant] > 2 {
			t.Errorf("tenant %s peaked at %d running jobs, quota is 2", tenant, peak[tenant])
		}
		if peak[tenant] == 0 {
			t.Errorf("tenant %s never ran", tenant)
		}
	}
}

// TestSchedulerFairDequeue checks round-robin across tenants: a tenant
// arriving behind another tenant's burst runs before the burst ends.
func TestSchedulerFairDequeue(t *testing.T) {
	gate := make(chan struct{})
	var order []string
	var mu sync.Mutex
	s := newScheduler(64, 1, 1, func(j *job) {
		mu.Lock()
		order = append(order, j.tenant+":"+j.id)
		mu.Unlock()
		close(j.done)
	})
	s.testGate = func(j *job) {
		if j.id == "hold" {
			<-gate
		}
	}

	// The held job pins the single worker while the burst and the
	// latecomer queue up behind it.
	held := testJob("a")
	held.id = "hold"
	if err := s.submit(held); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { _, running := s.depth(); return running == 1 })

	var burst []*job
	for i := 0; i < 4; i++ {
		j := testJob("a")
		j.id = fmt.Sprintf("a%d", i)
		burst = append(burst, j)
		if err := s.submit(j); err != nil {
			t.Fatal(err)
		}
	}
	late := testJob("b")
	late.id = "b0"
	if err := s.submit(late); err != nil {
		t.Fatal(err)
	}

	close(gate)
	for _, j := range append(burst, late, held) {
		<-j.done
	}
	s.beginDrain()
	s.wait()

	mu.Lock()
	defer mu.Unlock()
	pos := func(id string) int {
		for i, e := range order {
			if e == "a:"+id || e == "b:"+id {
				return i
			}
		}
		t.Fatalf("%s never ran (order %v)", id, order)
		return -1
	}
	// Round-robin: b's single job must not sit behind a's whole burst.
	if pos("b0") > pos("a1") {
		t.Errorf("latecomer tenant b ran at %d, after most of tenant a's burst: %v", pos("b0"), order)
	}
}

// TestSchedulerDrain checks the drain contract: admission stops with
// errDraining, every admitted job still finishes, wait returns, and the
// workers exit.
func TestSchedulerDrain(t *testing.T) {
	var ran atomic.Int64
	s := newScheduler(64, 2, 4, func(j *job) {
		ran.Add(1)
		close(j.done)
	})
	var jobs []*job
	for i := 0; i < 12; i++ {
		j := testJob(fmt.Sprintf("t%d", i%3))
		jobs = append(jobs, j)
		if err := s.submit(j); err != nil {
			t.Fatal(err)
		}
	}
	s.beginDrain()
	if err := s.submit(testJob("late")); !errors.Is(err, errDraining) {
		t.Errorf("submit after beginDrain returned %v, want errDraining", err)
	}
	s.wait()
	if got := ran.Load(); got != 12 {
		t.Errorf("drain finished %d of 12 admitted jobs", got)
	}
	queued, running := s.depth()
	if queued != 0 || running != 0 {
		t.Errorf("after drain: %d queued, %d running", queued, running)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
