// Package nodesort implements the paper's shared-memory/node-level
// optimization (§6.1): data partitioning across physical *nodes* rather
// than cores, with all messages between a pair of nodes combined into
// one.
//
// With c cores per node and n = p/c nodes, the optimization (a) shrinks
// the histogramming problem from p-1 splitters to n-1 (the paper's
// example: 250 MB → 12 MB of sample on BlueGene/L geometry), and (b)
// reduces the all-to-all from p(p-1) messages to n(n-1). After the
// node-level exchange, each node redistributes its bucket among its own
// cores — the paper uses sample sort with regular sampling there; with
// the node's data assembled in one address space this degenerates to
// exact quantile splitting, which is what we do.
//
// Intra-node traffic models shared memory: runs move by reference, so
// the byte counters see only envelope-sized messages within a node while
// node-to-node messages carry full key payloads — mirroring where real
// network traffic flows.
package nodesort
