package codes

// The parallel local-sort and codec kernels: the same MSD radix sort and
// encode/decode maps as sort.go and codes.go, fanned over a bounded
// par.Pool. The top radix level is rewritten as a count/scatter pass —
// parallel strided counts, per-worker per-bucket offsets, a stable
// scatter into scratch, copy-back — and the 256 byte buckets then
// recurse through the serial in-place kernel, one bucket per task.
//
// Determinism: every scatter position is a pure function of the input
// and the (n, workers)-deterministic par.Blocks boundaries, and bucket
// recursion is serial within a bucket, so output depends only on the
// input and the worker budget — and for the pure-code kernel not even
// on that, since a fully sorted code array is unique. The tandem kernel
// shares serial SortByCode's guarantee exactly: codes sorted, payloads
// riding their codes, duplicate-code payload order unspecified.
//
// A one-worker pool or a small input short-circuits to the serial
// kernels, so Workers=1 pipelines run byte-for-byte the PR 5 code.

import (
	"hssort/internal/keycoder"
	"hssort/internal/par"
)

// parCutoff is the input length below which the parallel kernels hand
// straight to their serial counterparts: under ~16k codes the counting
// pass and goroutine fork-join cost more than they save.
const parCutoff = 1 << 14

// SortPar is Sort fanned over the pool: one parallel count/scatter pass
// on the top radix byte, then the byte buckets sorted serially in
// parallel. Falls back to Sort for one-worker pools and small inputs.
func SortPar(cs []Code, p *par.Pool) {
	if p.Workers() == 1 || len(cs) < parCutoff {
		Sort(cs)
		return
	}
	parMSD[struct{}](cs, nil, topShift, p)
}

// SortByCodePar is SortByCode fanned over the pool: parallel extraction,
// then the tandem count/scatter sort. The pure code plane delegates to
// SortPar; one-worker pools and small inputs fall back to the serial
// kernel.
func SortByCodePar[E any](elems []E, code func(E) uint64, p *par.Pool) []Code {
	if cs, ok := any(elems).([]Code); ok {
		SortPar(cs, p)
		return cs
	}
	if p.Workers() == 1 || len(elems) < parCutoff {
		return SortByCode(elems, code)
	}
	cs := make([]Code, len(elems))
	blocks := par.Blocks(len(elems), p.Workers())
	p.Do(len(blocks), func(i int) {
		for j := blocks[i].Lo; j < blocks[i].Hi; j++ {
			cs[j] = Code(code(elems[j]))
		}
	})
	parMSD(cs, elems, topShift, p)
	return cs
}

// parMSD runs the top radix level as a stable parallel count/scatter —
// with pay (when non-nil) permuted in lockstep — then recurses serially
// per byte bucket, buckets fanned over the pool. Degenerate levels
// (every code sharing the byte) are skipped without permuting, exactly
// as in the serial msd.
func parMSD[E any](cs []Code, pay []E, shift int, p *par.Pool) {
	n := len(cs)
	blocks := par.Blocks(n, p.Workers())
	nb := len(blocks)
	counts := make([][256]int, nb)
	var total [256]int
	for {
		p.Do(nb, func(i int) {
			cnt := &counts[i]
			*cnt = [256]int{}
			for _, c := range cs[blocks[i].Lo:blocks[i].Hi] {
				cnt[uint8(c>>shift)]++
			}
		})
		total = [256]int{}
		for i := range counts {
			for b := range total {
				total[b] += counts[i][b]
			}
		}
		if total[uint8(cs[0]>>shift)] == n {
			if shift == 0 {
				return
			}
			shift -= 8
			continue
		}
		break
	}
	// start[b] is bucket b's offset in the rebuilt array; offsets[i][b]
	// is where block i's bucket-b codes land inside it. Blocks write in
	// index order, so the scatter is stable and — positions being pure
	// functions of the counts — deterministic.
	var start [256]int
	sum := 0
	for b := range start {
		start[b] = sum
		sum += total[b]
	}
	offsets := make([][256]int, nb)
	pos := start
	for i := 0; i < nb; i++ {
		offsets[i] = pos
		for b := range pos {
			pos[b] += counts[i][b]
		}
	}
	scratch := make([]Code, n)
	var payScratch []E
	if pay != nil {
		payScratch = make([]E, n)
	}
	p.Do(nb, func(i int) {
		off := offsets[i]
		for j := blocks[i].Lo; j < blocks[i].Hi; j++ {
			d := uint8(cs[j] >> shift)
			scratch[off[d]] = cs[j]
			if pay != nil {
				payScratch[off[d]] = pay[j]
			}
			off[d]++
		}
	})
	p.Do(nb, func(i int) {
		copy(cs[blocks[i].Lo:blocks[i].Hi], scratch[blocks[i].Lo:blocks[i].Hi])
		if pay != nil {
			copy(pay[blocks[i].Lo:blocks[i].Hi], payScratch[blocks[i].Lo:blocks[i].Hi])
		}
	})
	if shift == 0 {
		return
	}
	p.Do(256, func(b int) {
		lo, hi := start[b], start[b]+total[b]
		if hi-lo <= 1 {
			return
		}
		if pay == nil {
			msd(cs[lo:hi], shift-8)
		} else {
			msdTandem(cs[lo:hi], pay[lo:hi], shift-8)
		}
	})
}

// EncodeIntoPar is EncodeInto with the coder map fanned over the pool in
// contiguous chunks. The pure-plane identity alias and the
// capacity-reuse contract are unchanged.
func EncodeIntoPar[K any](coder keycoder.Coder[K], keys []K, dst []Code, p *par.Pool) []Code {
	if cs, ok := any(keys).([]Code); ok {
		return cs
	}
	if p.Workers() == 1 || len(keys) < parCutoff {
		return EncodeInto(coder, keys, dst)
	}
	if cap(dst) < len(keys) {
		dst = make([]Code, len(keys))
	}
	dst = dst[:len(keys)]
	blocks := par.Blocks(len(keys), p.Workers())
	p.Do(len(blocks), func(i int) {
		for j := blocks[i].Lo; j < blocks[i].Hi; j++ {
			dst[j] = Code(coder.Encode(keys[j]))
		}
	})
	return dst
}

// DecodeSlicePar is DecodeSlice with the decode map fanned over the
// pool. The pure-plane identity alias is unchanged.
func DecodeSlicePar[K any](coder keycoder.Coder[K], cs []Code, p *par.Pool) []K {
	if ks, ok := any(cs).([]K); ok {
		return ks
	}
	if p.Workers() == 1 || len(cs) < parCutoff {
		return DecodeSlice(coder, cs)
	}
	out := make([]K, len(cs))
	blocks := par.Blocks(len(cs), p.Workers())
	p.Do(len(blocks), func(i int) {
		for j := blocks[i].Lo; j < blocks[i].Hi; j++ {
			out[j] = coder.Decode(uint64(cs[j]))
		}
	})
	return out
}

// ExtractPar is Extract with the extractor map fanned over the pool. The
// pure-plane identity alias is unchanged.
func ExtractPar[E any](elems []E, code func(E) uint64, p *par.Pool) []Code {
	if cs, ok := any(elems).([]Code); ok {
		return cs
	}
	if p.Workers() == 1 || len(elems) < parCutoff {
		return Extract(elems, code)
	}
	out := make([]Code, len(elems))
	blocks := par.Blocks(len(elems), p.Workers())
	p.Do(len(blocks), func(i int) {
		for j := blocks[i].Lo; j < blocks[i].Hi; j++ {
			out[j] = Code(code(elems[j]))
		}
	})
	return out
}
