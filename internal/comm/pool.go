package comm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Pool is a persistent SPMD worker world: p rank goroutines and one
// transport constructed once, then driven through any number of Run
// calls. It is the engine-reuse counterpart of World.Run — a World
// spawns p fresh goroutines and is married to one transport lifetime,
// while a Pool parks its workers between runs and Resets the transport
// so the next run starts from a clean protocol state even after an
// abort or cancellation.
//
// Run is additionally context-aware: cancellation (or deadline expiry)
// flows into the transport's abort machinery, so every rank blocked in
// Send/Recv/Barrier unblocks with an error satisfying
// errors.Is(err, ctx.Err()) — the cooperative cancellation path for
// long-lived sorting services.
//
// A Pool serializes runs: Run holds an internal lock for its duration,
// so concurrent Run calls execute one after another. Close stops the
// workers; it is the caller's lifecycle hook (hssort.Sorter.Close).
type Pool struct {
	t       Transport
	timeout time.Duration

	mu      sync.Mutex // serializes Run; guards closed
	closed  bool
	ranks   []int // the ranks hosted in this process (all, unless RankHoster)
	jobs    []chan func(c *Comm) error
	results chan rankResult
	wg      sync.WaitGroup

	// abortMu fences the asynchronous abort callbacks (ctx cancellation,
	// watchdog): active holds the generation of the run in flight, 0
	// when idle. A callback whose generation no longer matches is stale
	// — its run already finished — and must not abort the transport,
	// which by then may have been Reset for the next run.
	abortMu sync.Mutex
	gen     uint64
	active  uint64
}

// rankResult is one worker's outcome for the current run.
type rankResult struct {
	rank int
	err  error
}

// NewPool creates a Pool over a p-rank world. It accepts the same
// options as NewWorld (WithTransport, WithTimeout, WithInterceptor) and
// panics under the same conditions. Worker goroutines are spawned only
// for the ranks the transport hosts in this process (all of them for
// the in-memory backends; the local rank for a multi-process
// TCPTransport endpoint).
func NewPool(p int, opts ...Option) *Pool {
	w := NewWorld(p, opts...)
	ranks := hostedRanks(w.t)
	pl := &Pool{
		t:       w.t,
		timeout: w.timeout,
		ranks:   ranks,
		jobs:    make([]chan func(c *Comm) error, len(ranks)),
		results: make(chan rankResult, len(ranks)),
	}
	for i, r := range ranks {
		pl.jobs[i] = make(chan func(c *Comm) error)
		pl.wg.Add(1)
		go func(i, rank int) {
			defer pl.wg.Done()
			c := &Comm{w: w, rank: rank}
			for fn := range pl.jobs[i] {
				pl.results <- rankResult{rank, runRank(c, fn)}
			}
		}(i, r)
	}
	return pl
}

// runRank executes fn with the same panic containment as World.Run: a
// panicking rank aborts the whole transport (unblocking its peers) and
// reports the panic as its error, leaving the worker goroutine alive
// for the next run.
func runRank(c *Comm, fn func(c *Comm) error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("comm: rank %d panicked: %v", c.rank, rec)
			c.w.Abort(err)
		}
	}()
	return fn(c)
}

// Size returns the number of ranks in the world (across all processes,
// for a multi-process transport).
func (pl *Pool) Size() int { return pl.t.Size() }

// Transport returns the backend the Pool runs over. Read counters only
// between runs.
func (pl *Pool) Transport() Transport { return pl.t }

// HostedRanks returns how many of the Pool's ranks live in this process
// (see World.HostedRanks) — the divisor for per-rank core budgets.
func (pl *Pool) HostedRanks() int { return len(pl.ranks) }

// ErrPoolClosed is returned by Run after Close.
var ErrPoolClosed = errors.New("comm: pool closed")

// Run executes fn concurrently on every rank and waits for all to
// finish, returning the joined per-rank errors (nil if all succeeded).
//
// The transport is Reset before the ranks start, so each run begins
// with empty queues, a clean abort latch and zeroed counters — counters
// read between runs therefore describe exactly the last run.
//
// ctx cancellation aborts the transport with an error wrapping both
// ErrAborted and ctx's cause, unblocking every rank; ranks that were
// inside communication calls return errors satisfying
// errors.Is(err, context.Cause(ctx)). The Pool's timeout option (the
// wedged-run watchdog) applies per run, independent of ctx.
func (pl *Pool) Run(ctx context.Context, fn func(c *Comm) error) error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.closed {
		return ErrPoolClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	pl.t.Reset()
	pl.abortMu.Lock()
	pl.gen++
	gen := pl.gen
	pl.active = gen
	pl.abortMu.Unlock()
	defer func() {
		pl.abortMu.Lock()
		pl.active = 0
		pl.abortMu.Unlock()
	}()
	// abortRun aborts the transport only while this run is still the
	// active one: AfterFunc callbacks can outlive their run (stop()
	// does not wait for a callback already started), and a stale abort
	// landing after the next run's Reset would poison that run.
	abortRun := func(err error) {
		pl.abortMu.Lock()
		defer pl.abortMu.Unlock()
		if pl.active == gen {
			pl.t.Abort(err)
		}
	}
	stop := context.AfterFunc(ctx, func() {
		// Wrap both ctx.Err() and the cause: a context cancelled with a
		// custom cause (context.WithCancelCause) must still satisfy
		// errors.Is(err, ctx.Err()) on every rank — the engine contract
		// — while keeping the caller's cause visible.
		err := ctx.Err()
		if cause := context.Cause(ctx); !errors.Is(err, cause) {
			err = fmt.Errorf("%w: %w", err, cause)
		}
		abortRun(fmt.Errorf("%w: %w", ErrAborted, err))
	})
	defer stop()
	if pl.timeout > 0 {
		timer := time.AfterFunc(pl.timeout, func() {
			abortRun(fmt.Errorf("%w: timeout after %v", ErrAborted, pl.timeout))
		})
		defer timer.Stop()
	}
	for _, ch := range pl.jobs {
		ch <- fn
	}
	errs := make([]error, 0, len(pl.jobs))
	for range pl.jobs {
		res := <-pl.results
		errs = append(errs, res.err)
	}
	return errors.Join(errs...)
}

// Close stops the worker goroutines and waits for them to exit. It is
// idempotent; Run calls after Close return ErrPoolClosed.
func (pl *Pool) Close() {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.closed {
		return
	}
	pl.closed = true
	for _, ch := range pl.jobs {
		close(ch)
	}
	pl.wg.Wait()
}
