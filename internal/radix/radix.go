package radix

import (
	"fmt"
	"slices"
	"time"

	"hssort/internal/codes"
	"hssort/internal/collective"
	"hssort/internal/comm"
	"hssort/internal/core"
	"hssort/internal/exchange"
	"hssort/internal/keycoder"
	"hssort/internal/merge"
)

// Options configures a radix partition sort. Cmp and Coder are required.
type Options[K any] struct {
	// Cmp is the three-way key comparator (used for local sorting and
	// merging).
	Cmp func(K, K) int
	// Coder maps keys to the uint64 code space whose top bits are the
	// partitioning digits.
	Coder keycoder.Coder[K]
	// Code, when set, must be an order-preserving uint64 extractor
	// agreeing with Coder.Encode; the local sort, digit counting,
	// partition cuts and final merge then run on the comparator-free
	// code plane (see core.Options.Code).
	Code func(K) uint64
	// Bits is the digit width: 2^Bits buckets. Default 12 (4096
	// buckets). Must be in [1, 24].
	Bits int
	// BaseTag is the start of the tag range this sort uses. Default 5000.
	BaseTag comm.Tag
}

func (o Options[K]) withDefaults() (Options[K], error) {
	if o.Cmp == nil {
		return o, fmt.Errorf("radix: Options.Cmp is required")
	}
	if o.Coder == nil {
		return o, fmt.Errorf("radix: Options.Coder is required")
	}
	if o.Bits == 0 {
		o.Bits = 12
	}
	if o.Bits < 1 || o.Bits > 24 {
		return o, fmt.Errorf("radix: Bits %d outside [1,24]", o.Bits)
	}
	if o.BaseTag == 0 {
		o.BaseTag = 5000
	}
	return o, nil
}

// Sort runs the radix partition sort and returns this rank's globally
// sorted partition. The input is consumed.
func Sort[K any](c *comm.Comm, local []K, opt Options[K]) ([]K, core.Stats, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, core.Stats{}, err
	}
	p := c.Size()
	base := opt.BaseTag
	digits := 1 << opt.Bits
	shift := 64 - opt.Bits
	var stats core.Stats
	stats.Buckets = digits

	t0 := time.Now()
	var localCodes []codes.Code
	if opt.Code != nil {
		localCodes = codes.SortByCode(local, opt.Code)
	} else {
		slices.SortFunc(local, opt.Cmp)
	}
	localSort := time.Since(t0)

	// Global digit histogram — read off the code array when the code
	// plane already paid for the encode.
	bytes0 := c.Counters().BytesSent
	t1 := time.Now()
	counts := make([]int64, digits)
	if localCodes != nil {
		for _, cd := range localCodes {
			counts[uint64(cd)>>shift]++
		}
	} else {
		for _, k := range local {
			counts[opt.Coder.Encode(k)>>shift]++
		}
	}
	global, err := collective.AllReduce(c, base, counts, collective.SumInt64)
	if err != nil {
		return nil, stats, err
	}
	var n int64
	for _, v := range global {
		n += v
	}
	stats.N = n
	// Contiguous, balance-greedy digit→rank assignment: close a rank's
	// block once it holds >= N/p keys.
	owner := make([]int, digits)
	perRank := n / int64(p)
	if perRank < 1 {
		perRank = 1
	}
	rank, acc := 0, int64(0)
	for d := 0; d < digits; d++ {
		owner[d] = rank
		acc += global[d]
		if acc >= perRank && rank < p-1 {
			rank++
			acc = 0
		}
	}
	splitterTime := time.Since(t1)
	splitterBytes := c.Counters().BytesSent - bytes0
	stats.Rounds = 1

	// Digit boundaries as splitter keys let the generic partition +
	// exchange machinery do the data movement. On the code plane the
	// boundaries are the digit codes themselves — no decode round trip.
	bytes1 := c.Counters().BytesSent
	t2 := time.Now()
	var runs [][]K
	if localCodes != nil {
		splitterCodes := make([]codes.Code, digits-1)
		for d := 1; d < digits; d++ {
			splitterCodes[d-1] = codes.Code(uint64(d) << shift)
		}
		runs = exchange.PartitionByCode(local, localCodes, splitterCodes)
	} else {
		splitters := make([]K, digits-1)
		for d := 1; d < digits; d++ {
			splitters[d-1] = opt.Coder.Decode(uint64(d) << shift)
		}
		// Decoded digit boundaries are monotone only for coders that
		// invert on the full code space; validate once (the check
		// Partition no longer repeats per call).
		exchange.ValidateSplitters(splitters, opt.Cmp)
		runs = exchange.Partition(local, splitters, opt.Cmp)
	}
	recv, err := exchange.Exchange(c, base+2, runs, func(b int) int { return owner[b] })
	if err != nil {
		return nil, stats, err
	}
	exchangeTime := time.Since(t2)
	exchangeBytes := c.Counters().BytesSent - bytes1

	t3 := time.Now()
	var out []K
	if opt.Code != nil {
		out = merge.KWayByCode(recv, opt.Code)
	} else {
		out = merge.KWay(recv, opt.Cmp)
	}
	mergeTime := time.Since(t3)
	stats.LocalCount = len(out)

	agg, err := collective.AllReduce(c, base+3, []int64{
		splitterBytes, exchangeBytes,
		int64(localSort), int64(splitterTime), int64(exchangeTime), int64(mergeTime),
		int64(len(out)), int64(len(out)),
	}, func(dst, src []int64) {
		dst[0] += src[0]
		dst[1] += src[1]
		for i := 2; i <= 5; i++ {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
		dst[6] += src[6]
		if src[7] > dst[7] {
			dst[7] = src[7]
		}
	})
	if err != nil {
		return nil, stats, err
	}
	stats.SplitterBytes = agg[0]
	stats.ExchangeBytes = agg[1]
	stats.LocalSort = time.Duration(agg[2])
	stats.Splitter = time.Duration(agg[3])
	stats.Exchange = time.Duration(agg[4])
	stats.Merge = time.Duration(agg[5])
	if agg[6] > 0 {
		stats.Imbalance = float64(agg[7]) * float64(p) / float64(agg[6])
	} else {
		stats.Imbalance = 1
	}
	return out, stats, nil
}
