// Package collective implements the communication collectives the paper's
// cost analysis (§5.1) assumes: dissemination barrier, binomial-tree
// broadcast and reduction, binomial gather, direct scatter, all-to-allv
// personalized exchange, and pipelined (chunked chain) broadcast/reduction
// for large messages.
//
// All collectives are built purely on comm.Endpoint Send/Recv, so they run
// unchanged over a whole World or over a Group (sub-communicator). Every
// rank of the endpoint must call the collective with the same root and tag
// (standard SPMD discipline); tags namespace concurrent collectives.
package collective
