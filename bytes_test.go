package hssort

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"slices"
	"testing"

	"hssort/internal/dist"
	"hssort/internal/keycoder"
)

func cloneByteShards(shards [][][]byte) [][][]byte {
	out := make([][][]byte, len(shards))
	for i, s := range shards {
		out[i] = slices.Clone(s)
	}
	return out
}

// byteOracle is the satellite-test reference: flatten the input and
// stable-sort it with the comparator. Keys that compare equal are
// byte-identical, so any correct distributed sort must reproduce this
// exact sequence when its rank outputs are concatenated in order.
func byteOracle(shards [][][]byte) [][]byte {
	var all [][]byte
	for _, s := range shards {
		all = append(all, s...)
	}
	slices.SortStableFunc(all, bytes.Compare)
	return all
}

// checkBytesAgainstOracle asserts each rank's output is sorted and the
// rank-order concatenation equals the sort.SliceStable-style oracle.
func checkBytesAgainstOracle(t *testing.T, oracle [][]byte, outs [][][]byte) {
	t.Helper()
	var got [][]byte
	for r, o := range outs {
		if !slices.IsSortedFunc(o, bytes.Compare) {
			t.Fatalf("rank %d output not sorted", r)
		}
		got = append(got, o...)
	}
	if !slices.EqualFunc(got, oracle, bytes.Equal) {
		t.Fatalf("output is not the sorted permutation of the input (%d vs %d keys)", len(got), len(oracle))
	}
}

// sameByteOutputs reports whether two runs produced rank-identical
// partitions.
func sameByteOutputs(a, b [][][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for r := range a {
		if !slices.EqualFunc(a[r], b[r], bytes.Equal) {
			return false
		}
	}
	return true
}

// dupHeavyByteShards draws every key from a small pool of distinct byte
// strings — some sharing the 8-byte code prefix, some not — the §4.3
// adversarial duplicate regime transplanted to the prefix plane.
func dupHeavyByteShards(p, perRank int) [][][]byte {
	pool := [][]byte{
		[]byte("aardvark"), []byte("aardwolf"), // distinct codes (differ inside the prefix)
		[]byte("prefix:alpha"), []byte("prefix:beta"), []byte("prefix:beta"), // code-equal group
		[]byte(""), []byte("z"), // short keys: zero-padded codes
		[]byte("prefix:alpha\x00"),               // code-equal to prefix:alpha, tie-broken past the prefix
		[]byte("mmmmmmmmmm"), []byte("mmmmmmmm"), // code-equal: one key is the other's prefix
	}
	shards := make([][][]byte, p)
	for r := range shards {
		shards[r] = make([][]byte, perRank)
		for i := range shards[r] {
			shards[r][i] = pool[(r*7919+i*104729)%len(pool)]
		}
	}
	return shards
}

// TestSortBytesAllAlgorithms runs every byte-capable algorithm over
// hash-like keys: the prefix-plane algorithms plus Bitonic, which has no
// code plane and exercises the pure-comparator fallback.
func TestSortBytesAllAlgorithms(t *testing.T) {
	const p, perRank = 4, 1000
	algs := []Algorithm{
		HSS, HSSOneRound, HSSTheoretical,
		SampleSortRegular, SampleSortRandom,
		HistogramSort, NodeHSS, Bitonic,
	}
	for _, alg := range algs {
		shards := dist.ByteSpec{Kind: dist.HashLike}.Shards(perRank, p, 3)
		oracle := byteOracle(shards)
		cfg := Config{Procs: p, Algorithm: alg, Epsilon: 0.1, Seed: 5}
		if alg == NodeHSS {
			cfg.CoresPerNode = 2
		}
		outs, stats, err := SortBytes(cfg, cloneByteShards(shards))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		checkBytesAgainstOracle(t, oracle, outs)
		if stats.N != p*perRank {
			t.Errorf("%v: N = %d", alg, stats.N)
		}
	}
}

// TestNewBytesRejections pins the constructor's contract: no bijective
// coder exists for byte strings, so Radix and explicit coders are out,
// and HistogramSort's probe bisection needs the code plane.
func TestNewBytesRejections(t *testing.T) {
	if _, err := NewBytes(Config{Procs: 4, Algorithm: Radix}); err == nil {
		t.Error("Radix accepted byte keys; it needs a bijective coder")
	}
	if _, err := NewBytes(Config{Procs: 4, Algorithm: HistogramSort, CodePath: CodePathOff}); err == nil {
		t.Error("HistogramSort with CodePathOff accepted; probe bisection needs the prefix code plane")
	}
	if _, err := NewBytes(Config{Procs: 4, Algorithm: HSS, Coder: keycoder.Int64{}}); err == nil {
		t.Error("NewBytes accepted an explicit Config.Coder")
	}
}

// TestBytePrefixSaturation is the eps-honesty regression test: on an
// all-shared-prefix input every key has the same prefix code, so
// splitter resolution cannot improve past one bucket. The determination
// guard must saturate within its stagnation window instead of spinning
// histogram rounds, report Finalized=false, and publish the honest
// (terrible) achieved epsilon rather than the target.
func TestBytePrefixSaturation(t *testing.T) {
	const p, perRank = 4, 2000
	// URLLike keys all start with the exactly-8-byte "https://" scheme.
	shards := dist.ByteSpec{Kind: dist.URLLike}.Shards(perRank, p, 11)
	oracle := byteOracle(shards)

	s, err := NewBytes(Config{Procs: p, Algorithm: HSS, Epsilon: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	plan, err := s.Plan(context.Background(), cloneByteShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	// The stagnation guard fires after three no-progress rounds; the
	// round count must stay pinned, not run to MaxRounds.
	if plan.Rounds > 4 {
		t.Errorf("saturated plan ran %d histogram rounds, want <= 4 (stagnation guard)", plan.Rounds)
	}
	if plan.Finalized {
		t.Error("saturated plan claims Finalized; splitters cannot meet their rank windows")
	}
	if plan.AchievedEpsilon <= plan.Epsilon {
		t.Errorf("AchievedEpsilon = %.4f <= target %.4f; saturation must be reported honestly",
			plan.AchievedEpsilon, plan.Epsilon)
	}
	// All keys share one code, so the whole input lands in one bucket:
	// achieved eps is p-1 exactly.
	if want := float64(p - 1); plan.AchievedEpsilon != want {
		t.Errorf("AchievedEpsilon = %.4f, want %.4f (single-bucket saturation)", plan.AchievedEpsilon, want)
	}

	outs, stats, err := s.Sort(context.Background(), cloneByteShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	checkBytesAgainstOracle(t, oracle, outs)
	if stats.Rounds > 4 {
		t.Errorf("saturated sort ran %d rounds, want <= 4", stats.Rounds)
	}
	if stats.PrefixCollisions != int64(p*perRank) {
		t.Errorf("PrefixCollisions = %d, want %d (every key is prefix-equal)",
			stats.PrefixCollisions, p*perRank)
	}
	if got, want := stats.Imbalance, float64(p); got != want {
		t.Errorf("Imbalance = %.4f, want %.4f (honest single-bucket report)", got, want)
	}
}

// TestSortBytesMatrixEquivalence is the byte-key conformance sweep:
// across sim/inproc/tcp transports, materializing and streaming
// exchanges, and serial through GOMAXPROCS worker pools, the sort must
// produce rank-identical output matching the stable comparator oracle —
// including the duplicate-heavy and all-shared-prefix worst cases.
func TestSortBytesMatrixEquivalence(t *testing.T) {
	const p, perRank = 4, 1200
	inputs := []struct {
		name   string
		shards [][][]byte
	}{
		{"hashlike", dist.ByteSpec{Kind: dist.HashLike}.Shards(perRank, p, 13)},
		{"urllike-shared-prefix", dist.ByteSpec{Kind: dist.URLLike}.Shards(perRank, p, 13)},
		{"loglines", dist.ByteSpec{Kind: dist.LogLines}.Shards(perRank, p, 13)},
		{"dupheavy", dupHeavyByteShards(p, perRank)},
	}
	workerVals := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, in := range inputs {
		t.Run(in.name, func(t *testing.T) {
			oracle := byteOracle(in.shards)
			base := Config{Procs: p, Algorithm: HSS, Epsilon: 0.05, Seed: 17, Workers: 1}
			baseline, _, err := SortBytes(base, cloneByteShards(in.shards))
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			checkBytesAgainstOracle(t, oracle, baseline)

			for _, tr := range []Transport{TransportSim, TransportInproc, TransportTCP} {
				for _, stream := range []bool{false, true} {
					for _, w := range workerVals {
						name := fmt.Sprintf("%v/stream=%v/workers=%d", tr, stream, w)
						t.Run(name, func(t *testing.T) {
							cfg := base
							cfg.Transport = tr
							cfg.StreamExchange = stream
							cfg.Workers = w
							outs, stats, err := SortBytes(cfg, cloneByteShards(in.shards))
							if err != nil {
								t.Fatal(err)
							}
							if !sameByteOutputs(outs, baseline) {
								t.Fatal("output differs from the sim/materializing/serial baseline")
							}
							if in.name == "urllike-shared-prefix" && stats.PrefixCollisions != int64(p*perRank) {
								t.Errorf("PrefixCollisions = %d, want %d", stats.PrefixCollisions, p*perRank)
							}
						})
					}
				}
			}
		})
	}
}

// TestSortBytesCrossPlane pins the planes against each other where the
// prefix plane is exact: with zero prefix collisions, code-space
// splitter determination is isomorphic to key-space determination, so
// the prefix plane and the pure-comparator plane (CodePathOff) must be
// rank-identical, not merely both sorted.
func TestSortBytesCrossPlane(t *testing.T) {
	const p, perRank = 4, 2000
	shards := dist.ByteSpec{Kind: dist.HashLike}.Shards(perRank, p, 19)

	prefixCfg := Config{Procs: p, Algorithm: HSS, Epsilon: 0.05, Seed: 23}
	prefixOuts, prefixStats, err := SortBytes(prefixCfg, cloneByteShards(shards))
	if err != nil {
		t.Fatalf("prefix plane: %v", err)
	}
	// The cross-plane identity only holds collision-free; this seed's
	// hash-like draw has distinct 8-byte prefixes throughout.
	if prefixStats.PrefixCollisions != 0 {
		t.Fatalf("PrefixCollisions = %d; pick a collision-free seed for this test", prefixStats.PrefixCollisions)
	}

	oracleCfg := prefixCfg
	oracleCfg.CodePath = CodePathOff
	oracleOuts, oracleStats, err := SortBytes(oracleCfg, cloneByteShards(shards))
	if err != nil {
		t.Fatalf("comparator plane: %v", err)
	}
	if oracleStats.PrefixCollisions != 0 {
		t.Errorf("comparator plane reported PrefixCollisions = %d, want 0 (counter is prefix-plane only)",
			oracleStats.PrefixCollisions)
	}
	if !sameByteOutputs(prefixOuts, oracleOuts) {
		t.Fatal("prefix plane output differs from the comparator oracle on collision-free keys")
	}
	if prefixStats.Rounds != oracleStats.Rounds || prefixStats.TotalSample != oracleStats.TotalSample {
		t.Errorf("protocol diverged across planes: prefix %d rounds/%d sample, comparator %d rounds/%d sample",
			prefixStats.Rounds, prefixStats.TotalSample, oracleStats.Rounds, oracleStats.TotalSample)
	}
}

// TestBytesPlanRoundTrip exercises prepare-once/sort-many on the prefix
// plane: a plan's code-space splitters materialize as 8-byte
// representative keys, re-extract to the identical codes inside
// SortWithPlan, and reproduce the direct sort exactly.
func TestBytesPlanRoundTrip(t *testing.T) {
	const p, perRank = 4, 1500
	for _, kind := range []dist.ByteKind{dist.HashLike, dist.URLLike} {
		t.Run(kind.String(), func(t *testing.T) {
			shards := dist.ByteSpec{Kind: kind}.Shards(perRank, p, 29)
			oracle := byteOracle(shards)
			s, err := NewBytes(Config{Procs: p, Algorithm: HSS, Epsilon: 0.05, Seed: 31})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			direct, _, err := s.Sort(context.Background(), cloneByteShards(shards))
			if err != nil {
				t.Fatalf("direct: %v", err)
			}
			plan, err := s.Plan(context.Background(), cloneByteShards(shards))
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			planned, stats, err := s.SortWithPlan(context.Background(), plan, cloneByteShards(shards))
			if err != nil {
				t.Fatalf("planned: %v", err)
			}
			checkBytesAgainstOracle(t, oracle, planned)
			if !sameByteOutputs(planned, direct) {
				t.Fatal("SortWithPlan output differs from the direct sort")
			}
			if stats.Rounds != 0 {
				t.Errorf("planned sort ran %d histogram rounds, want 0", stats.Rounds)
			}
		})
	}
}
