// Command experiments regenerates every table and figure of the paper's
// evaluation. Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Usage:
//
//	experiments -exp all                 # run everything
//	experiments -exp table6.1           # one experiment
//	experiments -exp fig6.1 -scale 2    # scale simulated sizes up/down
//
// Experiments: fig3.1, fig4.1, table5.1, fig6.1, table6.1, fig6.2,
// approx (§3.4 validation).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hssort"
)

// experiment is one regenerable table or figure.
type experiment struct {
	name string
	desc string
	run  func(scale float64) error
}

var experiments = []experiment{
	{"fig3.1", "splitter intervals shrink across rounds (illustration)", runFig31},
	{"fig4.1", "sample size vs p: sample sort vs HSS (analytic + measured)", runFig41},
	{"table5.1", "complexity table with concrete sample sizes (p=1e5, eps=5%)", runTable51},
	{"fig6.1", "weak scaling: execution-time breakdown per phase", runFig61},
	{"table6.1", "histogramming rounds observed at the paper's processor counts", runTable61},
	{"fig6.2", "ChaNGa sorting: HSS vs classic histogram sort on Dwarf/Lambb", runFig62},
	{"approx", "§3.4 approximate rank oracle accuracy validation", runApprox},
}

// transport is the comm backend the sorting experiments run over, set by
// the -transport flag. The default (sim) reproduces the paper's
// byte-accounted numbers; inproc reports wall-clock speed only.
var transport hssort.Transport

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all', or 'list')")
	scale := flag.Float64("scale", 1, "scale factor for simulated problem sizes")
	trName := flag.String("transport", "sim", "comm backend for the sorting experiments: sim or inproc")
	flag.Parse()

	var err error
	if transport, err = hssort.ParseTransport(*trName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *exp == "list" {
		for _, e := range experiments {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return
	}
	names := map[string]bool{}
	for _, n := range strings.Split(*exp, ",") {
		names[strings.TrimSpace(n)] = true
	}
	ran := 0
	for _, e := range experiments {
		if !names["all"] && !names[e.name] {
			continue
		}
		fmt.Printf("=== %s — %s ===\n\n", e.name, e.desc)
		if err := e.run(*scale); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		known := make([]string, 0, len(experiments))
		for _, e := range experiments {
			known = append(known, e.name)
		}
		sort.Strings(known)
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", *exp, strings.Join(known, ", "))
		os.Exit(2)
	}
}
