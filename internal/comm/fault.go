package comm

// fault.go implements FaultTransport: a deterministic chaos layer that
// wraps any Transport and perturbs its message flow — seeded drops,
// delays, duplicates, and a one-shot rank crash at a chosen protocol
// point. It is the test substrate for the failure-survival machinery:
// the same seed produces the same fault schedule, so a chaos test that
// fails replays exactly.
//
// The sort protocols assume what TCP gives them: reliable, FIFO,
// exactly-once delivery per (src, dst, tag) stream. A fault layer that
// actually discarded or reordered messages would not model a fault of
// the deployed system — it would model a different (broken) transport,
// and every protocol would rightly hang. So drop/delay/dup model a
// lossy *link* underneath its repair layer, the way TCP rides on lossy
// IP: a dropped message is retransmitted (delivered after a retransmit
// delay), a delayed message waits out its jitter, a duplicate is
// delivered once and the copy suppressed. The observable effect is pure
// added latency on a per-pair FIFO link — protocol outputs stay
// byte-identical to a clean run, which is exactly the determinism
// property the chaos sweep pins.
//
// Crashes are the real faults: once the crash condition fires, the
// victim rank's endpoint dies for real (TCPTransport.Kill /
// TCPLoopback.Kill — peers see a raw EOF), in-flight link traffic from
// the victim is discarded, and subsequent sends by the victim fail with
// the *PeerCrashError. OnCrash lets a process self-destruct instead
// (kill -9 in the multi-process harness).

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// FaultSpec configures a FaultTransport. Probabilities are per message
// and must satisfy Drop+Delay+Dup ≤ 1; the fate of each message is
// drawn deterministically from Seed and the (src, dst) pair's message
// sequence.
type FaultSpec struct {
	// Seed drives every random decision. The same seed and traffic
	// produce the same fault schedule.
	Seed uint64
	// Drop, Delay, Dup are per-message probabilities of the three link
	// faults. A "dropped" message is delivered after RetransmitDelay
	// (the link's repair layer resends it); a delayed message waits a
	// jitter in (0, MaxDelay]; a duplicated message is delivered once
	// with the copy suppressed.
	Drop, Delay, Dup float64
	// MaxDelay bounds the delay jitter. Default 2ms.
	MaxDelay time.Duration
	// RetransmitDelay is the latency modeling a drop + retransmit.
	// Default 2×MaxDelay.
	RetransmitDelay time.Duration

	// CrashRank is the rank that crashes when CrashWhen or
	// CrashAfterSends triggers (meaningful only when one of them is
	// set).
	CrashRank int
	// CrashWhen triggers the crash on CrashRank's first send matching
	// the predicate — tags name protocol phases, so a crash lands at a
	// reproducible protocol point.
	CrashWhen func(src, dst int, tag Tag) bool
	// CrashAfterSends triggers the crash on CrashRank's nth send (1 ≤
	// n), counting all destinations. Zero disables.
	CrashAfterSends int
	// OnCrash, if set, replaces the default crash action (killing the
	// victim's endpoint): the multi-process harness uses it to SIGKILL
	// the victim process itself.
	OnCrash func(rank int)
}

// withDefaults fills unset spec fields.
func (s FaultSpec) withDefaults() FaultSpec {
	if s.MaxDelay == 0 {
		s.MaxDelay = 2 * time.Millisecond
	}
	if s.RetransmitDelay == 0 {
		s.RetransmitDelay = 2 * s.MaxDelay
	}
	return s
}

// lossy reports whether any link fault is enabled.
func (s *FaultSpec) lossy() bool { return s.Drop > 0 || s.Delay > 0 || s.Dup > 0 }

// crashArmed reports whether a crash trigger is configured.
func (s *FaultSpec) crashArmed() bool { return s.CrashWhen != nil || s.CrashAfterSends > 0 }

// FaultStats counts the faults a FaultTransport has injected.
type FaultStats struct {
	// Dropped, Delayed, Duplicated count link faults (each message
	// still delivered exactly once, late).
	Dropped, Delayed, Duplicated int64
	// Crashes is 1 after the crash trigger has fired.
	Crashes int64
}

// FaultTransport wraps a Transport with deterministic fault injection.
// Construct with NewFaultTransport; Close closes the inner transport
// after the link workers drain.
type FaultTransport struct {
	inner Transport
	spec  FaultSpec

	mu     sync.Mutex
	links  map[[2]int]*faultLink
	closed bool
	// epoch invalidates in-flight link deliveries across Reset: a
	// message popped before a Reset must not land in the next run.
	epoch atomic.Uint64

	crashed  atomic.Bool
	crashErr atomic.Pointer[PeerCrashError]
	sends    atomic.Int64 // CrashRank's send count (CrashAfterSends)

	dropped, delayed, duplicated, crashes atomic.Int64

	wg sync.WaitGroup
}

var (
	_ Transport  = (*FaultTransport)(nil)
	_ RankHoster = (*FaultTransport)(nil)
	_ io.Closer  = (*FaultTransport)(nil)
)

// NewFaultTransport wraps inner with the fault schedule of spec.
func NewFaultTransport(inner Transport, spec FaultSpec) *FaultTransport {
	return &FaultTransport{
		inner: inner,
		spec:  spec.withDefaults(),
		links: make(map[[2]int]*faultLink),
	}
}

// Inner returns the wrapped transport (tests reach through to Kill /
// Respawn / inspect endpoints).
func (ft *FaultTransport) Inner() Transport { return ft.inner }

// FaultStats returns the faults injected so far.
func (ft *FaultTransport) FaultStats() FaultStats {
	return FaultStats{
		Dropped:    ft.dropped.Load(),
		Delayed:    ft.delayed.Load(),
		Duplicated: ft.duplicated.Load(),
		Crashes:    ft.crashes.Load(),
	}
}

// faultLink is the per-(src,dst) FIFO delivery worker: messages queue
// with their fault-assigned latency and a goroutine delivers them in
// order, so faults add delay without ever reordering a pair's stream.
type faultLink struct {
	ft       *FaultTransport
	src, dst int
	rng      uint64 // deterministic fate source, advanced under mu

	mu     sync.Mutex
	cond   *sync.Cond
	q      []faultMsg
	closed bool
}

// faultMsg is one queued delivery.
type faultMsg struct {
	tag     Tag
	payload any
	bytes   int64
	wait    time.Duration
	epoch   uint64
}

// link returns (creating on demand) the FIFO link for (src, dst).
func (ft *FaultTransport) link(src, dst int) *faultLink {
	key := [2]int{src, dst}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	l := ft.links[key]
	if l == nil {
		l = &faultLink{ft: ft, src: src, dst: dst}
		l.cond = sync.NewCond(&l.mu)
		// Decorrelate pair streams: each link owns an independent
		// deterministic sequence derived from the seed and the pair.
		l.rng = ft.spec.Seed ^ (uint64(src)+1)*0x9e3779b97f4a7c15 ^ (uint64(dst)+1)*0xc2b2ae3d27d4eb4f
		ft.links[key] = l
		if !ft.closed {
			ft.wg.Add(1)
			go l.run()
		}
	}
	return l
}

// Send applies the crash trigger and the link fault schedule, then
// forwards to the inner transport (directly, or through the pair's FIFO
// link when a latency fault is drawn).
func (ft *FaultTransport) Send(src, dst int, tag Tag, payload any, bytes int64) error {
	if ft.spec.crashArmed() && src == ft.spec.CrashRank {
		if err := ft.maybeCrash(src, dst, tag); err != nil {
			return err
		}
	}
	if src == dst || !ft.spec.lossy() {
		return ft.inner.Send(src, dst, tag, payload, bytes)
	}
	if err := ft.inner.Err(); err != nil {
		return err
	}
	l := ft.link(src, dst)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrTransportClosed
	}
	u := splitmix64Float(&l.rng)
	var wait time.Duration
	s := &ft.spec
	switch {
	case u < s.Drop:
		// The link lost the message; its repair layer retransmits.
		wait = s.RetransmitDelay
		ft.dropped.Add(1)
	case u < s.Drop+s.Delay:
		wait = time.Duration(1 + splitmix64(&l.rng)%uint64(s.MaxDelay))
		ft.delayed.Add(1)
	case u < s.Drop+s.Delay+s.Dup:
		// Delivered twice; the duplicate is suppressed, the survivor
		// pays the duplicate-detection queueing cost.
		wait = s.MaxDelay / 2
		ft.duplicated.Add(1)
	}
	l.q = append(l.q, faultMsg{tag: tag, payload: payload, bytes: bytes, wait: wait, epoch: ft.epoch.Load()})
	l.cond.Signal()
	return nil
}

// maybeCrash fires the one-shot crash when the trigger matches,
// returning the crash error for this and every later send by the
// victim.
func (ft *FaultTransport) maybeCrash(src, dst int, tag Tag) error {
	if ft.crashed.Load() {
		return ft.crashError(src)
	}
	s := &ft.spec
	trigger := s.CrashWhen != nil && s.CrashWhen(src, dst, tag)
	if s.CrashAfterSends > 0 && ft.sends.Add(1) >= int64(s.CrashAfterSends) {
		trigger = true
	}
	if !trigger {
		return nil
	}
	if !ft.crashed.CompareAndSwap(false, true) {
		return ft.crashError(src)
	}
	err := &PeerCrashError{Rank: src, Err: errors.New("injected crash (fault spec)")}
	ft.crashErr.Store(err)
	ft.crashes.Add(1)
	if s.OnCrash != nil {
		s.OnCrash(src)
		return err
	}
	switch in := ft.inner.(type) {
	case *TCPLoopback:
		in.Kill(src)
	case *TCPTransport:
		in.Kill()
	default:
		// In-memory transports have no socket to sever; the abort latch
		// is the closest analogue of a visible crash.
		ft.inner.Abort(err)
	}
	return err
}

// ClearCrash disarms the crash trigger and forgets the injected crash —
// for use between runs after the victim rank has been respawned, so the
// next run's traffic flows again (link faults stay active). Without it
// a phase-triggered crash would re-fire every run.
func (ft *FaultTransport) ClearCrash() {
	ft.spec.CrashWhen = nil
	ft.spec.CrashAfterSends = 0
	ft.crashErr.Store(nil)
	ft.crashed.Store(false)
}

// crashError returns the latched crash error, or an equivalent fresh one
// when a concurrent trigger won the CAS but has not stored it yet.
func (ft *FaultTransport) crashError(rank int) error {
	if e := ft.crashErr.Load(); e != nil {
		return e
	}
	return &PeerCrashError{Rank: rank, Err: errors.New("injected crash (fault spec)")}
}

// run delivers one link's queue in FIFO order, sleeping out each
// message's fault latency.
func (l *faultLink) run() {
	defer l.ft.wg.Done()
	for {
		l.mu.Lock()
		for len(l.q) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.q) == 0 && l.closed {
			l.mu.Unlock()
			return
		}
		m := l.q[0]
		l.q = l.q[1:]
		l.mu.Unlock()
		if m.wait > 0 {
			time.Sleep(m.wait)
		}
		if m.epoch != l.ft.epoch.Load() {
			continue // run ended (Reset) while this message was in flight
		}
		if l.ft.crashed.Load() && l.src == l.ft.spec.CrashRank {
			continue // the victim's in-flight traffic died with it
		}
		// Delivery errors surface through the inner transport's abort
		// latch at the blocked receiver; the link cannot return them.
		l.ft.inner.Send(l.src, l.dst, m.tag, m.payload, m.bytes)
	}
}

// Size delegates to the inner transport.
func (ft *FaultTransport) Size() int { return ft.inner.Size() }

// Recv delegates to the inner transport.
func (ft *FaultTransport) Recv(dst, src int, tag Tag) (Message, error) {
	return ft.inner.Recv(dst, src, tag)
}

// TryRecv delegates to the inner transport.
func (ft *FaultTransport) TryRecv(dst, src int, tag Tag) (Message, bool, error) {
	return ft.inner.TryRecv(dst, src, tag)
}

// Barrier delegates to the inner transport.
func (ft *FaultTransport) Barrier(rank int) error { return ft.inner.Barrier(rank) }

// Abort delegates to the inner transport.
func (ft *FaultTransport) Abort(err error) { ft.inner.Abort(err) }

// Err delegates to the inner transport.
func (ft *FaultTransport) Err() error { return ft.inner.Err() }

// Reset discards in-flight link traffic of the finished (possibly
// aborted) run and advances the inner transport's generation. The crash
// stays: a crashed rank needs a rejoin (transport-level), not a Reset.
func (ft *FaultTransport) Reset() {
	ft.epoch.Add(1)
	ft.mu.Lock()
	for _, l := range ft.links {
		l.mu.Lock()
		l.q = nil
		l.mu.Unlock()
	}
	ft.mu.Unlock()
	ft.inner.Reset()
}

// Counters delegates to the inner transport (faults add latency, not
// traffic, so measured counters stay truthful).
func (ft *FaultTransport) Counters(r int) Counters { return ft.inner.Counters(r) }

// TotalCounters delegates to the inner transport.
func (ft *FaultTransport) TotalCounters() Counters { return ft.inner.TotalCounters() }

// ResetCounters delegates to the inner transport.
func (ft *FaultTransport) ResetCounters() { ft.inner.ResetCounters() }

// LocalRanks reports the ranks hosted by the inner transport.
func (ft *FaultTransport) LocalRanks() []int {
	if rh, ok := ft.inner.(RankHoster); ok {
		return rh.LocalRanks()
	}
	ranks := make([]int, ft.inner.Size())
	for i := range ranks {
		ranks[i] = i
	}
	return ranks
}

// Close drains the link workers and closes the inner transport.
func (ft *FaultTransport) Close() error {
	ft.mu.Lock()
	ft.closed = true
	for _, l := range ft.links {
		l.mu.Lock()
		l.closed = true
		l.cond.Broadcast()
		l.mu.Unlock()
	}
	ft.mu.Unlock()
	ft.wg.Wait()
	if c, ok := ft.inner.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// String identifies the wrapper in logs and test failures.
func (ft *FaultTransport) String() string {
	return fmt.Sprintf("FaultTransport(drop=%g delay=%g dup=%g seed=%d)", ft.spec.Drop, ft.spec.Delay, ft.spec.Dup, ft.spec.Seed)
}
