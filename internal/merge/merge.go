package merge

import "hssort/internal/codes"

// Two merges two sorted runs into a new slice using the three-way
// comparator cmp. The merge is stable: on ties, elements of a precede
// elements of b.
func Two[K any](a, b []K, cmp func(K, K) int) []K {
	out := make([]K, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if cmp(a[i], b[j]) <= 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// KWay merges k sorted runs into a single sorted slice. Empty runs are
// permitted. The merge is stable across runs: ties resolve in favor of the
// lower run index. For k <= 2 it degrades to the trivial cases; otherwise
// it uses a loser tree (tournament tree), performing ceil(log2 k)
// comparisons per emitted key.
func KWay[K any](runs [][]K, cmp func(K, K) int) []K {
	nonEmpty := 0
	total := 0
	last := -1
	for i, r := range runs {
		total += len(r)
		if len(r) > 0 {
			nonEmpty++
			last = i
		}
	}
	switch nonEmpty {
	case 0:
		return []K{}
	case 1:
		out := make([]K, total)
		copy(out, runs[last])
		return out
	}
	lt := NewLoserTree(runs, cmp)
	out := make([]K, 0, total)
	for {
		k, ok := lt.Next()
		if !ok {
			break
		}
		out = append(out, k)
	}
	return out
}

// LoserTree is a tournament tree over k sorted runs that yields their
// merged order one key at a time. It is the streaming core of KWay,
// exported so the final assembly phase can merge incrementally without
// materializing inputs twice.
//
// Beyond the fixed-run form built by NewLoserTree, a tree started with
// NewStreaming admits runs as they arrive: AddRun registers a run that
// may still grow, Append feeds it more keys, CloseRun seals it, and
// NextReady emits merged keys only while emission is provably safe —
// the incremental k-way merge behind exchange.ExchangeStream.
type LoserTree[K any] struct {
	runs [][]K
	pos  []int // next unread index per run (current-chunk-relative)
	// pending queues refill chunks per run, consumed front to back.
	// Invariant: a run whose current buffer is drained has no pending
	// chunks (Next advances eagerly), so the head key is always
	// runs[i][pos[i]] when one exists.
	pending [][][]K
	// consumed counts keys ever emitted per run; unlike pos it is not
	// reset when a streaming run advances to its next chunk.
	consumed []int64
	// open marks runs that may still receive Append; an open run with an
	// empty buffer blocks NextReady (a future arrival could precede the
	// current minimum). starved counts such runs.
	open    []bool
	starved int
	// tree[1:] holds internal nodes: tree[i] is the run index that LOST
	// the match at node i. tree[0] holds the overall winner.
	tree    []int
	winners []int // rebuild scratch, cached to keep build allocation-free
	k       int   // number of leaves (power-of-two padded)
	n       int   // real number of runs
	cmp     func(K, K) int
	dirty   bool // a head changed outside Next: rebuild before next emit
}

// NewLoserTree builds a loser tree over the given fixed (fully
// materialized) sorted runs.
func NewLoserTree[K any](runs [][]K, cmp func(K, K) int) *LoserTree[K] {
	n := len(runs)
	k := 1
	for k < n {
		k *= 2
	}
	if k < 2 {
		k = 2
	}
	lt := &LoserTree[K]{
		runs:     runs,
		pos:      make([]int, n),
		pending:  make([][][]K, n),
		consumed: make([]int64, n),
		open:     make([]bool, n),
		tree:     make([]int, k),
		k:        k,
		n:        n,
		cmp:      cmp,
	}
	lt.build()
	return lt
}

// NewStreaming creates an empty loser tree that admits runs
// incrementally via AddRun.
func NewStreaming[K any](cmp func(K, K) int) *LoserTree[K] {
	return &LoserTree[K]{k: 2, tree: make([]int, 2), cmp: cmp, dirty: true}
}

// Reset empties the tree for reuse, dropping all references to run data
// but keeping the tournament arrays allocated — the engine-reuse hook
// that lets one tree serve many sorts without re-allocating per call.
func (lt *LoserTree[K]) Reset() {
	clear(lt.runs)
	clear(lt.pending)
	lt.runs = lt.runs[:0]
	lt.pos = lt.pos[:0]
	lt.pending = lt.pending[:0]
	lt.consumed = lt.consumed[:0]
	lt.open = lt.open[:0]
	lt.n = 0
	lt.starved = 0
	lt.dirty = true
}

// AddRun registers a new, initially open run holding the given sorted
// keys (nil for an empty stream) and returns its index. Ties between
// runs resolve in favor of the lower index, so callers wanting a
// deterministic merge must add runs in a deterministic order.
func (lt *LoserTree[K]) AddRun(keys []K) int {
	i := lt.n
	lt.runs = append(lt.runs, keys)
	lt.pos = append(lt.pos, 0)
	lt.pending = append(lt.pending, nil)
	lt.consumed = append(lt.consumed, 0)
	lt.open = append(lt.open, true)
	lt.n++
	if len(keys) == 0 {
		lt.starved++
	}
	for lt.k < lt.n {
		lt.k *= 2
	}
	if len(lt.tree) != lt.k {
		lt.tree = make([]int, lt.k)
	}
	lt.dirty = true
	return i
}

// Append feeds more keys to open run i as a new chunk. Keys must compare
// >= everything previously appended to that run. The tree takes
// ownership of the slice (no copy); fully drained chunks drop out of the
// tree's reach, so a streaming run's live memory stays proportional to
// its unmerged window, not its total volume.
func (lt *LoserTree[K]) Append(i int, keys []K) {
	if !lt.open[i] {
		panic("merge: Append to closed run")
	}
	if len(keys) == 0 {
		return
	}
	if lt.pos[i] >= len(lt.runs[i]) {
		// The run was drained (pending empty by invariant): the new
		// chunk becomes current, the head changes, and the tournament
		// must be replayed before the next emission.
		lt.starved--
		lt.dirty = true
		lt.runs[i] = keys
		lt.pos[i] = 0
	} else {
		lt.pending[i] = append(lt.pending[i], keys)
	}
}

// CloseRun seals run i: no further Append may follow, and once its
// buffer drains the run is exhausted rather than starved.
func (lt *LoserTree[K]) CloseRun(i int) {
	if !lt.open[i] {
		return
	}
	lt.open[i] = false
	if lt.pos[i] >= len(lt.runs[i]) {
		lt.starved--
	}
}

// Consumed returns the number of keys emitted from run i so far.
func (lt *LoserTree[K]) Consumed(i int) int64 { return lt.consumed[i] }

// Exhausted reports whether every run is closed and fully emitted.
func (lt *LoserTree[K]) Exhausted() bool {
	for i := 0; i < lt.n; i++ {
		if lt.open[i] || lt.pos[i] < len(lt.runs[i]) {
			return false
		}
	}
	return true
}

// Rest removes and returns every run's unconsumed keys, one slice per
// run in run-index order — the hand-off that lets the streaming drain
// finish with a parallel merge instead of pulling the tail through the
// tournament one key at a time. Every run must be closed. Single-chunk
// tails alias the tree's buffers; multi-chunk tails are concatenated.
// The keys count as consumed and the tree is left exhausted. The nil
// second result marks the comparator plane (no code slices to reuse);
// see Streamer.Rest.
func (lt *LoserTree[K]) Rest() ([][]K, [][]codes.Code) {
	out := make([][]K, lt.n)
	for i := 0; i < lt.n; i++ {
		if lt.open[i] {
			panic("merge: Rest with open run")
		}
		tail := lt.runs[i][lt.pos[i]:]
		if len(lt.pending[i]) == 0 {
			out[i] = tail
		} else {
			total := len(tail)
			for _, c := range lt.pending[i] {
				total += len(c)
			}
			buf := make([]K, 0, total)
			buf = append(buf, tail...)
			for _, c := range lt.pending[i] {
				buf = append(buf, c...)
			}
			out[i] = buf
		}
		lt.consumed[i] += int64(len(out[i]))
		lt.runs[i] = nil
		lt.pending[i] = nil
		lt.pos[i] = 0
	}
	lt.dirty = true
	return out, nil
}

// NextReady returns the next merged key if emission is safe: no open run
// is empty. ok=false means blocked (some open run awaits data) or
// exhausted; distinguish with Exhausted.
func (lt *LoserTree[K]) NextReady() (key K, ok bool) {
	if lt.starved > 0 {
		var zero K
		return zero, false
	}
	return lt.Next()
}

// exhausted reports whether run i has no keys left (virtual runs beyond n
// are always exhausted).
func (lt *LoserTree[K]) exhausted(i int) bool {
	return i >= lt.n || lt.pos[i] >= len(lt.runs[i])
}

// less reports whether run a's head should be emitted before run b's head.
// Exhausted runs compare greater than everything; ties resolve by run
// index for stability.
func (lt *LoserTree[K]) less(a, b int) bool {
	ea, eb := lt.exhausted(a), lt.exhausted(b)
	switch {
	case ea && eb:
		return a < b
	case ea:
		return false
	case eb:
		return true
	}
	c := lt.cmp(lt.runs[a][lt.pos[a]], lt.runs[b][lt.pos[b]])
	if c != 0 {
		return c < 0
	}
	return a < b
}

// build plays the initial tournament bottom-up.
func (lt *LoserTree[K]) build() {
	// winners[i] is the winner of the subtree rooted at node i.
	if len(lt.winners) != 2*lt.k {
		lt.winners = make([]int, 2*lt.k)
	}
	winners := lt.winners
	for i := 0; i < lt.k; i++ {
		winners[lt.k+i] = i
	}
	for i := lt.k - 1; i >= 1; i-- {
		a, b := winners[2*i], winners[2*i+1]
		if lt.less(a, b) {
			winners[i] = a
			lt.tree[i] = b
		} else {
			winners[i] = b
			lt.tree[i] = a
		}
	}
	lt.tree[0] = winners[1]
}

// Next returns the smallest remaining key across all runs, or ok=false
// when every run's buffer is drained. On a streaming tree prefer
// NextReady, which additionally refuses to emit while an open run could
// still receive a smaller key.
func (lt *LoserTree[K]) Next() (key K, ok bool) {
	if lt.dirty {
		lt.build()
		lt.dirty = false
	}
	w := lt.tree[0]
	if lt.exhausted(w) {
		var zero K
		return zero, false
	}
	key = lt.runs[w][lt.pos[w]]
	lt.pos[w]++
	lt.consumed[w]++
	if lt.pos[w] >= len(lt.runs[w]) {
		if q := lt.pending[w]; len(q) > 0 {
			// Advance to the next queued chunk: the old buffer drops out
			// of reach and the replay below repositions the new head.
			lt.runs[w] = q[0]
			lt.pending[w] = q[1:]
			lt.pos[w] = 0
		} else if lt.open[w] {
			lt.starved++
		}
	}
	// Replay matches from leaf w up to the root.
	node := (lt.k + w) / 2
	winner := w
	for node >= 1 {
		if lt.less(lt.tree[node], winner) {
			lt.tree[node], winner = winner, lt.tree[node]
		}
		node /= 2
	}
	lt.tree[0] = winner
	return key, true
}
