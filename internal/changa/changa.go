package changa

import (
	"math"
	"math/rand/v2"
)

// Particle is a 3-D position (mass is irrelevant to sorting).
type Particle struct {
	X, Y, Z float64
}

// Box is an axis-aligned bounding box.
type Box struct {
	Min, Max [3]float64
}

// UnitBox is the canonical simulation volume [0,1)³.
var UnitBox = Box{Min: [3]float64{0, 0, 0}, Max: [3]float64{1, 1, 1}}

// Dwarf generates n particles of the Dwarf analogue: a single Plummer
// sphere centred in the unit box. The Plummer scale radius a controls
// concentration; r is clipped to the box.
func Dwarf(n int, seed uint64) []Particle {
	rng := rand.New(rand.NewPCG(seed, 0xdeadbeefcafe))
	out := make([]Particle, n)
	const a = 0.02 // scale radius: deep central concentration
	centre := [3]float64{0.5, 0.5, 0.5}
	for i := range out {
		out[i] = plummer(rng, centre, a)
	}
	return out
}

// Lambb generates n particles of the Lambb analogue: 85% of mass in ~64
// halos with power-law distributed sizes, 15% uniform background — the
// shape of a cosmological volume after structure formation.
func Lambb(n int, seed uint64) []Particle {
	rng := rand.New(rand.NewPCG(seed, 0xfeedface1234))
	const halos = 64
	centres := make([][3]float64, halos)
	scales := make([]float64, halos)
	weights := make([]float64, halos)
	total := 0.0
	for h := range centres {
		centres[h] = [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}
		// Halo masses follow a steep power law (few big, many small).
		w := math.Pow(rng.Float64(), 3)
		weights[h] = w
		total += w
		scales[h] = 0.002 + 0.03*w
	}
	cum := make([]float64, halos)
	acc := 0.0
	for h, w := range weights {
		acc += w / total
		cum[h] = acc
	}
	out := make([]Particle, n)
	for i := range out {
		if rng.Float64() < 0.15 {
			out[i] = Particle{rng.Float64(), rng.Float64(), rng.Float64()}
			continue
		}
		u := rng.Float64()
		h := 0
		for h < halos-1 && cum[h] < u {
			h++
		}
		out[i] = plummer(rng, centres[h], scales[h])
	}
	return out
}

// plummer draws one particle from a Plummer profile of scale radius a
// around centre, clipped to the unit box.
func plummer(rng *rand.Rand, centre [3]float64, a float64) Particle {
	// Inverse CDF of the Plummer cumulative mass profile
	// M(r)/M = r³/(r²+a²)^(3/2):  r = a · (u^(2/3) / (1 - u^(2/3)))^(1/2).
	u := rng.Float64()
	for u == 0 || u > 0.999 { // clip the unbounded outer tail
		u = rng.Float64()
	}
	u23 := math.Pow(u, 2.0/3.0)
	r := a * math.Sqrt(u23/(1-u23))
	// Uniform direction on the sphere.
	z := 2*rng.Float64() - 1
	phi := 2 * math.Pi * rng.Float64()
	s := math.Sqrt(1 - z*z)
	p := Particle{
		X: centre[0] + r*s*math.Cos(phi),
		Y: centre[1] + r*s*math.Sin(phi),
		Z: centre[2] + r*z,
	}
	p.X = clamp01(p.X)
	p.Y = clamp01(p.Y)
	p.Z = clamp01(p.Z)
	return p
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return math.Nextafter(1, 0)
	}
	return v
}

// MortonKey maps a particle to its 63-bit Morton (Z-order) key within
// box: 21 bits per dimension, bit-interleaved — ChaNGa's space-filling
// curve key for domain decomposition.
func MortonKey(p Particle, box Box) uint64 {
	qx := quantize(p.X, box.Min[0], box.Max[0])
	qy := quantize(p.Y, box.Min[1], box.Max[1])
	qz := quantize(p.Z, box.Min[2], box.Max[2])
	return spread(qx) | spread(qy)<<1 | spread(qz)<<2
}

// quantize maps v in [min, max) to a 21-bit integer.
func quantize(v, min, max float64) uint64 {
	if max <= min {
		return 0
	}
	f := (v - min) / (max - min)
	if f < 0 {
		f = 0
	}
	if f >= 1 {
		f = math.Nextafter(1, 0)
	}
	return uint64(f * (1 << 21))
}

// spread inserts two zero bits between each of the low 21 bits of v
// (the standard Morton magic-number dilation).
func spread(v uint64) uint64 {
	v &= 0x1fffff
	v = (v | v<<32) & 0x1f00000000ffff
	v = (v | v<<16) & 0x1f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// Keys maps particles to Morton keys in one pass.
func Keys(ps []Particle, box Box) []uint64 {
	out := make([]uint64, len(ps))
	for i, p := range ps {
		out[i] = MortonKey(p, box)
	}
	return out
}

// Bounds returns the bounding box of the particles (half-open upper
// bounds nudged so every particle quantizes in range).
func Bounds(ps []Particle) Box {
	if len(ps) == 0 {
		return UnitBox
	}
	b := Box{
		Min: [3]float64{ps[0].X, ps[0].Y, ps[0].Z},
		Max: [3]float64{ps[0].X, ps[0].Y, ps[0].Z},
	}
	for _, p := range ps {
		b.Min[0] = math.Min(b.Min[0], p.X)
		b.Min[1] = math.Min(b.Min[1], p.Y)
		b.Min[2] = math.Min(b.Min[2], p.Z)
		b.Max[0] = math.Max(b.Max[0], p.X)
		b.Max[1] = math.Max(b.Max[1], p.Y)
		b.Max[2] = math.Max(b.Max[2], p.Z)
	}
	for d := 0; d < 3; d++ {
		span := b.Max[d] - b.Min[d]
		if span <= 0 {
			span = 1
		}
		b.Max[d] += span * 1e-9
	}
	return b
}

// Dataset names a particle generator, mirroring the paper's dataset pair.
type Dataset struct {
	// Name is the display name ("Dwarf", "Lambb").
	Name string
	// Gen generates n particles.
	Gen func(n int, seed uint64) []Particle
}

// Datasets lists the Fig 6.2 workloads.
var Datasets = []Dataset{
	{Name: "Dwarf", Gen: Dwarf},
	{Name: "Lambb", Gen: Lambb},
}

// ShardKeys generates shard r of p of a dataset's Morton keys: particles
// are dealt round-robin to ranks (ChaNGa's initial decomposition is
// unsorted), then keyed within the dataset-wide bounding box. The keys of
// shard r are deterministic given (dataset, n, p, seed) but require
// generating the full dataset, matching how a simulation snapshot would
// be loaded.
func ShardKeys(ds Dataset, totalParticles, r, p int, seed uint64) []uint64 {
	ps := ds.Gen(totalParticles, seed)
	box := Bounds(ps)
	var mine []Particle
	for i := r; i < len(ps); i += p {
		mine = append(mine, ps[i])
	}
	return Keys(mine, box)
}
