package core

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"sort"

	"hssort/internal/collective"
	"hssort/internal/comm"
	"hssort/internal/exchange"
	"hssort/internal/histogram"
	"hssort/internal/sampling"
)

// SplitterInfo reports the splitter-determination protocol's behaviour:
// the quantities Table 6.1 and Fig 4.1 measure.
type SplitterInfo struct {
	// Rounds is the number of histogramming rounds executed.
	Rounds int
	// SamplePerRound is the overall (deduplicated) probe count of each
	// round; TotalSample is the sum over rounds.
	SamplePerRound []int64
	TotalSample    int64
	// Finalized reports whether every splitter met its target window
	// (false means the MaxRounds/stagnation fallback to best candidates
	// fired — e.g. on mass-duplicate inputs without tagging).
	Finalized bool
}

// roundPlan is the per-round broadcast from the central processor: either
// the sampling instructions for the next round or the final splitters.
type roundPlan[K any] struct {
	Done      bool
	Finalized bool                    // valid when Done: all splitters met their windows
	Prob      float64                 // per-key sampling probability
	Intervals []histogram.Interval[K] // active splitter intervals to sample from
	Splitters []K                     // final splitters (Done only)
}

// planBytes estimates the wire size of a plan: two keys + two ranks per
// interval, one key per splitter, plus the fixed header.
func planBytes[K any](p roundPlan[K]) int64 {
	keySize := comm.SizeOf[K]()
	return 16 + int64(len(p.Intervals))*(2*keySize+16) + int64(len(p.Splitters))*keySize
}

// bcastPlan broadcasts a roundPlan from root along a binomial tree with
// explicit byte accounting.
func bcastPlan[K any](e comm.Endpoint, root int, tag comm.Tag, plan roundPlan[K]) (roundPlan[K], error) {
	comm.RegisterWire[roundPlan[K]]() // wire transports decode by registered type
	p := e.Size()
	me := e.Rank()
	rel := (me - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (me - mask + p) % p
			m, err := e.Recv(src, tag)
			if err != nil {
				return plan, err
			}
			got, ok := m.Payload.(roundPlan[K])
			if !ok {
				return plan, fmt.Errorf("core: plan payload type %T", m.Payload)
			}
			plan = got
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			dst := (me + mask) % p
			if err := e.Send(dst, tag, plan, planBytes(plan)); err != nil {
				return plan, err
			}
		}
		mask >>= 1
	}
	return plan, nil
}

// sampleIntervals draws a Bernoulli(prob) sample from the local sorted
// keys restricted to the active splitter intervals (§3.3 step 4). The
// result is sorted because intervals and in-interval indices are visited
// in order.
func sampleIntervals[K any](local []K, ivs []histogram.Interval[K], prob float64, cmp func(K, K) int, rng *rand.Rand) []K {
	var out []K
	for _, iv := range ivs {
		lo := 0
		if iv.HasLo {
			// First index with key strictly greater than the exclusive
			// lower bound.
			lo = sort.Search(len(local), func(j int) bool { return cmp(local[j], iv.Lo) > 0 })
		}
		hi := len(local)
		if iv.HasHi {
			hi = lo + sort.Search(len(local)-lo, func(j int) bool { return cmp(local[lo+j], iv.Hi) >= 0 })
		}
		if hi <= lo {
			continue
		}
		sampling.BernoulliIndices(hi-lo, prob, rng, func(i int) {
			out = append(out, local[lo+i])
		})
	}
	return out
}

// mergeSamples merges the per-rank sorted samples gathered at the root
// into one sorted, deduplicated probe list (O(S log p), §5.1.1).
func mergeSamples[K any](parts [][]K, cmp func(K, K) int) []K {
	for len(parts) > 1 {
		var next [][]K
		for i := 0; i+1 < len(parts); i += 2 {
			next = append(next, mergeTwo(parts[i], parts[i+1], cmp))
		}
		if len(parts)%2 == 1 {
			next = append(next, parts[len(parts)-1])
		}
		parts = next
	}
	if len(parts) == 0 {
		return nil
	}
	return slices.CompactFunc(parts[0], func(a, b K) bool { return cmp(a, b) == 0 })
}

func mergeTwo[K any](a, b []K, cmp func(K, K) int) []K {
	out := make([]K, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if cmp(a[i], b[j]) <= 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// rootController is the central processor's per-sort state machine. It
// exists only on the root rank.
type rootController[K any] struct {
	opt     Options[K]
	n       int64
	tracker *histogram.Tracker[K]
	ratios  []float64 // Theoretical schedule; nil otherwise

	prevCoverage int64
	stagnant     int

	scanSplitters []K // OneRoundScanning result once available
	scanAttempts  int
	scanProb      float64
}

func newRootController[K any](n int64, opt Options[K]) *rootController[K] {
	rc := &rootController[K]{
		opt:          opt,
		n:            n,
		tracker:      histogram.NewTracker[K](n, opt.Buckets, opt.Epsilon, opt.Cmp),
		prevCoverage: -1,
	}
	if opt.Schedule == Theoretical {
		rc.ratios = sampling.RatioSchedule(opt.Buckets, opt.Epsilon, opt.Rounds)
	}
	if opt.Schedule == OneRoundScanning {
		rc.scanProb = float64(opt.Buckets) * sampling.ScanningRatio(opt.Epsilon) / float64(n)
	}
	return rc
}

// plan decides round `round` (1-based): either the Done plan carrying the
// final splitters, or the sampling instructions for the next round.
func (rc *rootController[K]) plan(round int) roundPlan[K] {
	if rc.scanSplitters != nil {
		return roundPlan[K]{Done: true, Finalized: true, Splitters: rc.scanSplitters}
	}
	finish := func(finalized bool) (roundPlan[K], bool) {
		sp, ok := rc.tracker.Splitters()
		if !ok {
			return roundPlan[K]{}, false
		}
		// Candidate ranks track sorted targets, but the MaxRounds /
		// stagnation fallback can pick candidates whose keys invert
		// between adjacent targets. Sorting once here — splitter
		// determination time — is what lets exchange.Partition skip its
		// per-call O(B) validation on every rank.
		slices.SortFunc(sp, rc.opt.Cmp)
		return roundPlan[K]{Done: true, Finalized: finalized, Splitters: sp}, true
	}
	switch {
	case rc.tracker.Done():
		if p, ok := finish(true); ok {
			return p
		}
	case round > rc.opt.MaxRounds || rc.stagnant >= 3:
		// Fall back to the closest candidates seen; if some splitter
		// has never seen a probe, keep sampling (boosted) instead.
		if p, ok := finish(false); ok {
			return p
		}
	case rc.opt.Schedule == Theoretical && round > rc.opt.Rounds:
		// Lemma 3.3.1: after k rounds all splitters are finalized
		// w.h.p.; in the unlucky tail, finish from candidates.
		if p, ok := finish(rc.tracker.Done()); ok {
			return p
		}
	}

	ivs := rc.tracker.ActiveIntervals()
	var prob float64
	switch rc.opt.Schedule {
	case OneRoundScanning:
		// Retry with doubled density if the sample was too sparse for
		// the scanning algorithm (needs >= B-1 keys).
		prob = rc.scanProb * float64(int64(1)<<min(rc.scanAttempts, 30))
		rc.scanAttempts++
	case Theoretical:
		idx := min(round, len(rc.ratios)) - 1
		prob = float64(rc.opt.Buckets) * rc.ratios[idx] / float64(rc.n)
	default: // FixedOversampling
		coverage := rc.tracker.Coverage()
		if coverage < 1 {
			coverage = 1
		}
		prob = rc.opt.OversampleFactor * float64(rc.opt.Buckets) / float64(coverage)
	}
	if prob > 1 {
		prob = 1
	}
	return roundPlan[K]{Prob: prob, Intervals: ivs}
}

// absorb folds one round's global histogram into the controller state.
func (rc *rootController[K]) absorb(probes []K, ranks []int64) {
	if rc.opt.Schedule == OneRoundScanning && len(probes) >= rc.opt.Buckets-1 {
		if res, err := histogram.Scan(probes, ranks, rc.n, rc.opt.Buckets, rc.opt.Epsilon, rc.opt.Cmp); err == nil {
			rc.scanSplitters = res.Splitters
		}
	}
	// The tracker runs in every schedule so a fallback path always
	// exists (and OneRoundScanning gets candidates if Scan keeps
	// failing on pathological inputs).
	rc.tracker.Update(probes, ranks)
	cov := rc.tracker.Coverage()
	if cov == rc.prevCoverage {
		rc.stagnant++
	} else {
		rc.stagnant = 0
	}
	rc.prevCoverage = cov
}

// bcastKeys broadcasts the probe keys, using the pipelined chain for
// large messages and the binomial tree for small ones. The length is
// broadcast first so every rank picks the same algorithm.
func bcastKeys[K any](c *comm.Comm, root int, tag comm.Tag, keys []K, opt Options[K]) ([]K, error) {
	n, err := collective.BcastValue(c, root, tag, len(keys))
	if err != nil {
		return nil, err
	}
	if n >= opt.PipelineThreshold {
		return collective.PipelinedBcast(c, root, tag, keys, opt.PipelineChunk)
	}
	return collective.Bcast(c, root, tag, keys)
}

// reduceRanks sum-reduces the local rank vectors to root, pipelined for
// large histograms.
func reduceRanks[K any](c *comm.Comm, root int, tag comm.Tag, ranks []int64, opt Options[K]) ([]int64, error) {
	if len(ranks) >= opt.PipelineThreshold {
		return collective.PipelinedReduce(c, root, tag, ranks, collective.SumInt64, opt.PipelineChunk)
	}
	return collective.Reduce(c, root, tag, ranks, collective.SumInt64)
}

// DetermineSplitters runs the splitter-determination protocol over the
// world, each rank holding sortedLocal (already locally sorted), with n
// total keys. It returns the Buckets-1 splitters on every rank. Defaults
// are applied to opt internally.
func DetermineSplitters[K any](c *comm.Comm, sortedLocal []K, n int64, opt Options[K]) ([]K, SplitterInfo, error) {
	opt, err := opt.withDefaults(c.Size())
	if err != nil {
		return nil, SplitterInfo{}, err
	}
	if opt.Buckets == 1 || n == 0 {
		return []K{}, SplitterInfo{Finalized: true}, nil
	}
	root := 0
	me := c.Rank()
	base := opt.BaseTag
	rng := rand.New(rand.NewPCG(opt.Seed, 0xda3e39cb94b95bdb^uint64(me)))

	// Approximate histogramming (§3.4): build the per-rank
	// representative sample once; all rank queries go through it.
	var rep sampling.Representative[K]
	if opt.Approx {
		rep = sampling.NewRepresentative(sortedLocal, opt.ApproxSize, rng)
	}
	localRanks := func(probes []K) []int64 {
		if !opt.Approx {
			return histogram.LocalRanks(sortedLocal, probes, opt.Cmp)
		}
		out := make([]int64, len(probes))
		for i, q := range probes {
			out[i] = rep.LocalRank(q, opt.Cmp)
		}
		return out
	}

	var rc *rootController[K]
	if me == root {
		rc = newRootController(n, opt)
	}

	info := SplitterInfo{}
	for round := 1; ; round++ {
		var plan roundPlan[K]
		if me == root {
			plan = rc.plan(round)
		}
		plan, err := bcastPlan(c, root, base+tagPlan, plan)
		if err != nil {
			return nil, info, err
		}
		if plan.Done {
			info.Finalized = plan.Finalized
			// The one-time validation that lets exchange.Partition skip
			// its per-call O(B) re-check.
			exchange.ValidateSplitters(plan.Splitters, opt.Cmp)
			return plan.Splitters, info, nil
		}

		// Sampling phase (§3.3 step 4).
		sample := sampleIntervals(sortedLocal, plan.Intervals, plan.Prob, opt.Cmp, rng)
		parts, err := collective.Gatherv(c, root, base+tagSample, sample)
		if err != nil {
			return nil, info, err
		}
		var probes []K
		if me == root {
			probes = mergeSamples(parts, opt.Cmp)
		}

		// Histogramming phase (§3.3 steps 1-3).
		probes, err = bcastKeys(c, root, base+tagProbes, probes, opt)
		if err != nil {
			return nil, info, err
		}
		info.Rounds = round
		info.SamplePerRound = append(info.SamplePerRound, int64(len(probes)))
		info.TotalSample += int64(len(probes))

		global, err := reduceRanks(c, root, base+tagRanks, localRanks(probes), opt)
		if err != nil {
			return nil, info, err
		}
		if me == root {
			rc.absorb(probes, global)
			if opt.OnRound != nil {
				opt.OnRound(RoundTrace{
					Round:     round,
					Prob:      plan.Prob,
					Probes:    len(probes),
					Finalized: rc.tracker.NumFinalized(),
					Coverage:  rc.tracker.Coverage(),
				})
			}
		}
	}
}
