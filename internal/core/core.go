package core

import (
	"fmt"
	"time"

	"hssort/internal/collective"
	"hssort/internal/comm"
	"hssort/internal/exchange"
	"hssort/internal/keycoder"
	"hssort/internal/sampling"
	"hssort/internal/spill"
)

// Schedule selects the sampling discipline for splitter determination.
type Schedule int

const (
	// FixedOversampling gathers an expected OversampleFactor·Buckets
	// sample per round until all splitters are finalized (§6.1.2).
	FixedOversampling Schedule = iota
	// Theoretical runs Rounds rounds with sampling ratios
	// s_j = (2 ln B/ε)^(j/Rounds) (§3.3, Lemma 3.3.1).
	Theoretical
	// OneRoundScanning samples once at ratio 2/ε and picks splitters
	// with the scanning algorithm (§3.2, Theorem 3.2.1).
	OneRoundScanning
)

// String returns the schedule name used in experiment output.
func (s Schedule) String() string {
	switch s {
	case FixedOversampling:
		return "fixed-oversampling"
	case Theoretical:
		return "theoretical"
	case OneRoundScanning:
		return "one-round-scanning"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Options configures an HSS sort. Cmp is required; every other field has
// a documented default applied by Sort.
type Options[K any] struct {
	// Cmp is the three-way key comparator.
	Cmp func(K, K) int
	// Coder, when set, runs the entire pipeline on the code plane: keys
	// are encoded once into order-preserving uint64 code points, every
	// compute phase (radix local sort, partition cuts, histogram scans,
	// code-keyed merges — on the streaming exchange the codes themselves
	// travel in the chunks) runs on raw integer comparisons, and the
	// output is decoded once at the end. The coder must agree with Cmp:
	// Cmp(a,b) < 0 ⇔ Encode(a) < Encode(b) and Cmp(a,b) == 0 ⇔ codes
	// equal. Takes precedence over Code.
	Coder keycoder.Coder[K]
	// Code, when set (and Coder is not), supplies a per-key sort code for
	// the decorated compute plane — the payload-carrying case where keys
	// cannot be reconstructed from codes alone (hssort.KV records). The
	// local sort radix-sorts a code decoration with the records in tow,
	// partition cuts run on the code array, and both merge paths compare
	// codes (received runs are encoded once per hop). Must be
	// order-preserving for Cmp like Coder.
	Code func(K) uint64
	// PrefixCode marks Code as a non-injective prefix extractor: it is
	// order-preserving only in the weak sense cmp(a, b) < 0 ⟹ code(a) <=
	// code(b), and distinct keys may share a code (variable-length byte
	// keys truncated to an 8-byte prefix). The pipeline then runs the
	// prefix plane: code-keyed kernels everywhere, with a comparator
	// tie-break after the radix local sort and inside the merges, and
	// splitter determination in code space (prefix-equal splitter
	// candidates saturate instead of looping rounds — see
	// SplitterInfo.Finalized). Requires Code; ignored when Coder is set.
	PrefixCode bool
	// Epsilon is the load-imbalance threshold ε: every bucket receives
	// at most N(1+ε)/B keys w.h.p. Default 0.05.
	Epsilon float64
	// Buckets is the number of output ranges B. Default: world size
	// (one bucket per processor, the flat sort). The two-level and
	// ChaNGa configurations set it to node count or virtual-processor
	// count.
	Buckets int
	// Owner maps a bucket to the rank that receives it. Default:
	// exchange.ContiguousOwner(Buckets, p).
	Owner func(bucket int) int
	// Schedule selects the sampling discipline. Default
	// FixedOversampling.
	Schedule Schedule
	// Rounds is the round count k for the Theoretical schedule.
	// Default: sampling.AutoRounds(Buckets, Epsilon). Ignored by the
	// other schedules.
	Rounds int
	// MaxRounds caps histogramming rounds before falling back to the
	// best candidates seen (guarantees termination on adversarial
	// inputs such as mass duplicates). Default: 4× the §6.2 bound + 8.
	MaxRounds int
	// OversampleFactor is f for FixedOversampling: the expected sample
	// size per round in units of Buckets. Default 5 (the paper's
	// setting).
	OversampleFactor float64
	// Seed derives each rank's sampling stream. Default 1.
	Seed uint64
	// Approx enables §3.4 approximate histogramming: local ranks are
	// answered from a per-rank representative sample instead of the
	// full input. The effective imbalance guarantee loosens to ~2ε.
	Approx bool
	// ApproxSize is the representative sample size per rank; default
	// sampling.RepresentativeSize(Buckets, Epsilon).
	ApproxSize int
	// ChunkKeys, when positive, selects the streaming chunked exchange:
	// bucket payloads move in ChunkKeys-sized chunks interleaved across
	// destinations and the k-way merge runs incrementally as chunks
	// arrive, overlapping the exchange tail (§6.2) with bounded peak
	// memory. 0 (the default) selects the materializing exchange.
	ChunkKeys int
	// Workers is this rank's compute-phase worker budget: the radix
	// local sort, partition scans, encode/decode maps and off-overlap
	// merges fan over a par.Pool of this size. <= 1 (the default) runs
	// every kernel serially; output is identical for every budget. The
	// root engine resolves its Config.Workers = 0 default
	// (GOMAXPROCS/hosted-ranks) before threading the value down here.
	Workers int
	// Splitters, when non-nil, injects pre-determined splitters (a
	// stored plan) and skips splitter determination entirely: the sort
	// goes straight to partition → exchange → merge with Stats.Rounds =
	// 0. The slice must hold Buckets-1 keys in non-decreasing cmp order
	// — Sort validates once and panics otherwise, mirroring the
	// validate-at-determination contract of exchange.Partition. Every
	// rank must inject the same splitters.
	Splitters []K
	// StaleBound, with injected Splitters, arms the staleness guard:
	// after partitioning, the ranks all-reduce the per-bucket loads and,
	// if the observed bucket imbalance max·B/N exceeds StaleBound, throw
	// the stale plan away and re-histogram (Stats.Replanned reports it).
	// The guard costs one B-length reduction per sort. 0 disables it. A
	// natural setting is (1+ε)·slack, e.g. 1.5·(1+ε).
	StaleBound float64
	// Scratch, when non-nil, is this rank's reusable exchange state; a
	// long-lived engine passes the same Scratch on every call (see
	// exchange.Scratch). Each rank needs its own.
	Scratch *exchange.Scratch[K]
	// Spill, when non-nil, is this rank's out-of-core manager: the local
	// sort runs spill.LocalSort against its budget and the exchange's
	// receive path diverts over-budget streams to compressed run files
	// (see spill.Manager). nil keeps every phase fully in memory.
	Spill *spill.Manager
	// BaseTag is the start of the tag range (12 tags) this sort uses on
	// the endpoint. Default 1000.
	BaseTag comm.Tag
	// PipelineChunk is the chunk size (elements) for pipelined
	// broadcast/reduction. Default 4096.
	PipelineChunk int
	// PipelineThreshold is the message length (elements) above which
	// histogram broadcasts/reductions switch from binomial trees to
	// pipelines (§5.1 recommends pipelining for large messages).
	// Default 8192.
	PipelineThreshold int
	// OnRound, if set, is invoked on the root rank after every
	// histogramming round with that round's protocol state — the
	// observability hook behind Table 6.1-style analyses. It must not
	// block; it runs inside the splitter-determination critical path.
	OnRound func(RoundTrace)
}

// RoundTrace reports one histogramming round to Options.OnRound.
type RoundTrace struct {
	// Round is 1-based.
	Round int
	// Prob is the per-key sampling probability used.
	Prob float64
	// Probes is the deduplicated probe count histogrammed.
	Probes int
	// Finalized is the number of splitters finalized so far.
	Finalized int
	// Coverage is G_j: keys still inside active splitter intervals.
	Coverage int64
}

// withDefaults validates opt and fills defaults for a world of p ranks.
func (o Options[K]) withDefaults(p int) (Options[K], error) {
	if o.Cmp == nil {
		return o, fmt.Errorf("core: Options.Cmp is required")
	}
	if o.PrefixCode && o.Code == nil {
		return o, fmt.Errorf("core: PrefixCode requires Code")
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.Epsilon < 0 {
		return o, fmt.Errorf("core: Epsilon %v < 0", o.Epsilon)
	}
	if o.Buckets == 0 {
		o.Buckets = p
	}
	if o.Buckets < 1 {
		return o, fmt.Errorf("core: Buckets %d < 1", o.Buckets)
	}
	if o.Owner == nil {
		o.Owner = exchange.ContiguousOwner(o.Buckets, p)
	}
	if o.OversampleFactor == 0 {
		o.OversampleFactor = 5
	}
	if o.OversampleFactor <= 2 && o.Schedule == FixedOversampling {
		return o, fmt.Errorf("core: OversampleFactor %v must exceed 2", o.OversampleFactor)
	}
	if o.Rounds == 0 {
		o.Rounds = sampling.AutoRounds(o.Buckets, o.Epsilon)
	}
	if o.MaxRounds == 0 {
		bound, err := sampling.ExpectedRoundsFixed(o.Buckets, o.Epsilon, max(o.OversampleFactor, 3))
		if err != nil {
			bound = 8
		}
		o.MaxRounds = 4*bound + 8
	}
	if o.ChunkKeys < 0 {
		return o, fmt.Errorf("core: ChunkKeys %d < 0", o.ChunkKeys)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.StaleBound < 0 {
		return o, fmt.Errorf("core: StaleBound %v < 0", o.StaleBound)
	}
	if o.Splitters != nil && len(o.Splitters) != o.Buckets-1 {
		return o, fmt.Errorf("core: %d injected splitters for %d buckets (want %d)", len(o.Splitters), o.Buckets, o.Buckets-1)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ApproxSize == 0 {
		o.ApproxSize = sampling.RepresentativeSize(o.Buckets, o.Epsilon)
	}
	if o.BaseTag == 0 {
		o.BaseTag = 1000
	}
	if o.PipelineChunk == 0 {
		o.PipelineChunk = 4096
	}
	if o.PipelineThreshold == 0 {
		o.PipelineThreshold = 8192
	}
	return o, nil
}

// Tag offsets within the sort's BaseTag range.
const (
	tagCount    = 0 // global N all-reduce (+1)
	tagPlan     = 2 // round plan broadcast
	tagSample   = 3 // sample gather
	tagProbes   = 4 // probe broadcast
	tagRanks    = 5 // histogram reduction
	tagExchange = 6 // bucket exchange
	tagStale    = 7 // staleness-guard bucket-load all-reduce
	tagStats    = 9 // stats all-reduce (+1)
	// TagSpan is the number of consecutive tags a Sort call occupies
	// starting at BaseTag.
	TagSpan = 11
)

// PhaseTagRange maps a named sort phase to the half-open tag interval
// [lo, hi) it occupies within the BaseTag range, for chaos/fault tooling
// that triggers on "the first message of phase X". base == 0 selects the
// default BaseTag (1000). Recognised phases: "start" (the whole span),
// "splitter" (count all-reduce through histogram reduction), "exchange"
// (bucket exchange and the staleness guard, excluding the closing stats
// all-reduce). ok is false for any other name.
func PhaseTagRange(base comm.Tag, phase string) (lo, hi comm.Tag, ok bool) {
	if base == 0 {
		base = 1000
	}
	switch phase {
	case "start":
		return base, base + TagSpan, true
	case "splitter":
		return base, base + tagExchange, true
	case "exchange":
		return base + tagExchange, base + tagStats, true
	}
	return 0, 0, false
}

// Stats reports one sort invocation. Per-phase durations are global
// maxima over ranks (the BSP critical path); byte counts are global sums;
// Rounds and sample sizes describe the splitter-determination protocol.
type Stats struct {
	// N is the global key count; Buckets the bucket count.
	N       int64
	Buckets int
	// Rounds is the number of histogramming rounds executed.
	Rounds int
	// SamplePerRound is the overall (all-ranks) sample gathered per
	// round; TotalSample is its sum.
	SamplePerRound []int64
	TotalSample    int64
	// LocalSort, Splitter, Exchange, Merge are per-phase wall times
	// (max over ranks).
	LocalSort, Splitter, Exchange, Merge time.Duration
	// ExchangeOverlap is merge time hidden inside the streaming
	// exchange — work §6.2's overlap argument takes off the critical
	// path (max over ranks; zero on the materializing path).
	ExchangeOverlap time.Duration
	// PeakInFlight is the peak bytes admitted to the incremental merge
	// but not yet emitted (max over ranks; zero on the materializing
	// path). The streaming flow control bounds it by
	// (p-1)·Window·ChunkKeys·keysize.
	PeakInFlight int64
	// SplitterBytes and ExchangeBytes are total bytes sent by all ranks
	// during splitter determination and data movement.
	SplitterBytes, ExchangeBytes int64
	// Replanned reports that injected splitters (Options.Splitters)
	// failed the staleness guard and the sort re-histogrammed; Rounds
	// then counts the replan's rounds.
	Replanned bool
	// Workers is the per-rank compute worker budget the sort ran with
	// (identical on every rank by the same-Options contract).
	Workers int
	// ParSpawned and ParTasks are the effective-parallelism counters,
	// summed over ranks: worker goroutines forked and fork-join tasks
	// executed by the compute kernels. ParSpawned = 0 at Workers 1 —
	// the serial pipeline forks nothing.
	ParSpawned, ParTasks int64
	// PrefixCollisions counts keys that landed in an equal-code span
	// during the prefix plane's local sorts, summed over ranks — the
	// number of keys whose final position needed the comparator
	// tie-break. 0 off the prefix plane.
	PrefixCollisions int64
	// Imbalance is max rank load / average rank load after sorting.
	Imbalance float64
	// LocalCount is this rank's output size.
	LocalCount int
	// Reconnects and Respawns are transport lifecycle counters summed
	// over ranks: dial retries beyond each first attempt, and rejoin
	// handshakes after a crash. Always zero on in-memory transports —
	// nonzero values are the fingerprint of a mesh that survived
	// churn (see comm.Counters).
	Reconnects, Respawns int64
	// SpilledBytes and SpillFileBytes are the out-of-core plane's
	// uncompressed and on-disk volumes, and SpillReads its frame
	// read-backs, summed over ranks; PeakResident is the worst rank's
	// budget-metered resident high-water mark. All zero without a
	// memory budget (see spill.Manager).
	SpilledBytes, SpillFileBytes, SpillReads, PeakResident int64
}

// Total returns the end-to-end critical-path time.
func (s Stats) Total() time.Duration {
	return s.LocalSort + s.Splitter + s.Exchange + s.Merge
}

// PhaseTimes carries one rank's per-phase measurements into FinishStats.
type PhaseTimes struct {
	// SplitterBytes and ExchangeBytes are this rank's bytes sent during
	// the two communication phases.
	SplitterBytes, ExchangeBytes int64
	// LocalSort, Splitter, Exchange, Merge are this rank's phase wall
	// times; Overlap is merge time hidden inside a streaming exchange.
	LocalSort, Splitter, Exchange, Merge, Overlap time.Duration
	// PeakInFlight is this rank's peak streaming-exchange buffer.
	PeakInFlight int64
	// OutCount is this rank's output size.
	OutCount int
	// ParSpawned and ParTasks are this rank's fork-join pool counters.
	ParSpawned, ParTasks int64
	// PrefixCollisions is this rank's equal-code tie-break key count
	// (prefix plane only).
	PrefixCollisions int64
	// Spill is this rank's out-of-core activity, drained from its
	// spill.Manager (zero value without a budget).
	Spill spill.Stats
}

// FinishStats all-reduces one rank's phase measurements into st, the
// final collective step shared by every sort pipeline: byte counts and
// output totals sum across ranks; phase times, overlap and peak
// in-flight take the global max (the BSP critical path); the output
// counts yield Imbalance. Transport lifecycle counters (reconnects,
// respawns) are read off the endpoint itself and summed, so a single
// rank's crash-recovery work is visible in every rank's Stats. Every
// rank must call it with the same tag, and every rank receives the same
// aggregates.
func FinishStats(e comm.Endpoint, tag comm.Tag, st *Stats, m PhaseTimes) error {
	var reconnects, respawns int64
	if cc, ok := e.(*comm.Comm); ok {
		ctr := cc.Counters()
		reconnects, respawns = ctr.Reconnects, ctr.Respawns
	}
	agg, err := collective.AllReduce(e, tag, []int64{
		m.SplitterBytes, m.ExchangeBytes,
		int64(m.LocalSort), int64(m.Splitter), int64(m.Exchange), int64(m.Merge),
		int64(m.Overlap), m.PeakInFlight,
		int64(m.OutCount), // sum -> N
		int64(m.OutCount), // max -> hottest rank
		m.ParSpawned, m.ParTasks,
		m.PrefixCollisions,
		reconnects, respawns,
		m.Spill.SpilledBytes, m.Spill.FileBytes, m.Spill.Reads,
		m.Spill.PeakResident,
	}, func(dst, src []int64) {
		dst[0] += src[0]
		dst[1] += src[1]
		for i := 2; i <= 7; i++ {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
		dst[8] += src[8]
		if src[9] > dst[9] {
			dst[9] = src[9]
		}
		for i := 10; i <= 17; i++ {
			dst[i] += src[i]
		}
		if src[18] > dst[18] {
			dst[18] = src[18]
		}
	})
	if err != nil {
		return err
	}
	st.SplitterBytes = agg[0]
	st.ExchangeBytes = agg[1]
	st.LocalSort = time.Duration(agg[2])
	st.Splitter = time.Duration(agg[3])
	st.Exchange = time.Duration(agg[4])
	st.Merge = time.Duration(agg[5])
	st.ExchangeOverlap = time.Duration(agg[6])
	st.PeakInFlight = agg[7]
	if agg[8] > 0 {
		st.Imbalance = float64(agg[9]) * float64(e.Size()) / float64(agg[8])
	} else {
		st.Imbalance = 1
	}
	st.ParSpawned = agg[10]
	st.ParTasks = agg[11]
	st.PrefixCollisions = agg[12]
	st.Reconnects = agg[13]
	st.Respawns = agg[14]
	st.SpilledBytes = agg[15]
	st.SpillFileBytes = agg[16]
	st.SpillReads = agg[17]
	st.PeakResident = agg[18]
	return nil
}
