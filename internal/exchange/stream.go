package exchange

import (
	"fmt"
	"slices"
	"time"

	"hssort/internal/comm"
	"hssort/internal/merge"
	"hssort/internal/par"
	"hssort/internal/spill"
)

// Streaming-exchange defaults.
const (
	// DefaultChunkKeys is the default chunk size (keys per message) of
	// the streaming exchange: large enough to amortize per-message
	// overhead, small enough that several chunks per peer fit in the
	// in-flight budget.
	DefaultChunkKeys = 64 * 1024
	// DefaultStreamWindow is the default flow-control window: how many
	// chunks a sender may have outstanding (sent but not yet merged by
	// the receiver) per destination. Window ≥ 2 keeps the pipe full —
	// one chunk in transit while the previous one merges.
	DefaultStreamWindow = 2
)

// StreamOptions configures the streaming exchange.
type StreamOptions struct {
	// ChunkKeys is the number of keys per chunk message. <= 0 selects
	// DefaultChunkKeys. (ExchangeMerge instead treats 0 as "use the
	// materializing path".)
	ChunkKeys int
	// Window is the per-destination flow-control window in chunks;
	// <= 0 selects DefaultStreamWindow. Peak in-flight data per rank is
	// bounded by (p-1)·Window·ChunkKeys keys.
	Window int
	// Pool, when it has more than one worker, parallelizes the merge
	// work that is off the overlap path: the materializing path's k-way
	// merge and the streaming drain's tail both split at sub-splitters
	// and merge one range per core (merge.ParMerge). Output is identical
	// for any worker budget. nil runs everything serially.
	Pool *par.Pool
	// Tie marks the code extractor as a non-injective prefix (the byte-key
	// plane): the merges then resolve equal-code matches with the
	// comparator before the run-index tie-break. Requires code != nil;
	// ignored on the comparator plane.
	Tie bool
	// Spill, when non-nil, bounds the receive path's resident bytes by
	// the manager's memory budget: a streaming exchange diverts incoming
	// streams to compressed run files once admitting more chunks would
	// exceed the budget, and the materializing path spills every received
	// run when their sum does. Spilled data re-enters the merge through
	// spill.RunReader frames, so output is identical with or without a
	// budget. Requires K to be plain data (spill.Spillable).
	Spill *spill.Manager
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.ChunkKeys <= 0 {
		o.ChunkKeys = DefaultChunkKeys
	}
	if o.Window <= 0 {
		o.Window = DefaultStreamWindow
	}
	return o
}

// StreamStats reports one rank's streaming-exchange behaviour.
type StreamStats struct {
	// Overlap is merge time hidden inside the exchange: time spent
	// emitting merged keys while at least one incoming stream was still
	// open. The §6.2 overlap discussion assumes exactly this work moves
	// off the critical path.
	Overlap time.Duration
	// MergeTail is merge time after the last incoming chunk arrived —
	// the only merge work a perfect overlap cannot hide.
	MergeTail time.Duration
	// PeakInFlight is the peak number of payload bytes admitted to the
	// incremental merge but not yet emitted. The credit protocol bounds
	// it by (p-1)·Window·ChunkKeys·sizeof(K).
	PeakInFlight int64
	// ChunksSent counts data messages (including empty closures) sent.
	ChunksSent int64
}

// streamMsg is one streaming-exchange message. credit > 0 marks a
// flow-control grant (runs nil); otherwise the message is a data chunk —
// up to ChunkKeys keys spread over one or more bucket-run views, in
// bucket order — with last marking the sender's final chunk for this
// receiver and total carrying the sender's whole payload size for this
// receiver (a capacity hint, set on every chunk of a stream).
type streamMsg[K any] struct {
	runs   [][]K
	keys   int
	total  int64
	last   bool
	credit int32
}

// chunk is one outgoing streaming-exchange unit: up to ChunkKeys keys
// spread over zero-copy bucket-run views.
type chunk[K any] struct {
	runs [][]K
	keys int
}

// Scratch holds one rank's reusable exchange state across sorts: the
// incremental merge tree (tournament arrays, rebuild scratch) and the
// chunk-routing queues the streaming path rebuilds every call. A
// long-lived engine (hssort.Sorter) keeps one Scratch per rank and
// passes it to every ExchangeMerge, turning the per-sort allocation
// churn of the streaming plane into steady-state reuse. The zero value
// is ready; nil is accepted everywhere and means "allocate per call".
//
// A Scratch belongs to one rank: it must not be shared between
// concurrently running ranks, and the caller must not start a second
// exchange with the same Scratch before the first returns.
type Scratch[K any] struct {
	streamer      merge.Streamer[K]
	streamerCoded bool // streamer was built with a code extractor
	streamerTie   bool // streamer resolves code ties with the comparator
	chunksTo      [][]chunk[K]
	totalTo       []int64
	outs          []outStream
	ins           []inStream[K]
}

// streamerFor returns the cached merge tree matching the requested
// plane, reset and emptied of any references to a previous sort's data.
func (sc *Scratch[K]) streamerFor(cmp func(K, K) int, code func(K) uint64, tie bool) merge.Streamer[K] {
	coded := code != nil
	tie = tie && coded
	if sc.streamer == nil || sc.streamerCoded != coded || sc.streamerTie != tie {
		sc.streamer = merge.NewStreamerTie(cmp, code, tie)
		sc.streamerCoded = coded
		sc.streamerTie = tie
	}
	sc.streamer.Reset()
	return sc.streamer
}

// routing returns the per-destination routing state sized for p ranks,
// cleared of any references to a previous sort's key data.
func (sc *Scratch[K]) routing(p int) (chunksTo [][]chunk[K], totalTo []int64, outs []outStream, ins []inStream[K]) {
	if cap(sc.chunksTo) < p {
		sc.chunksTo = make([][]chunk[K], p)
		sc.totalTo = make([]int64, p)
		sc.outs = make([]outStream, p)
		sc.ins = make([]inStream[K], p)
	}
	sc.chunksTo = sc.chunksTo[:p]
	sc.totalTo = sc.totalTo[:p]
	sc.outs = sc.outs[:p]
	sc.ins = sc.ins[:p]
	for d := range sc.chunksTo {
		q := sc.chunksTo[d]
		for i := range q {
			clear(q[i].runs)
			q[i].runs = q[i].runs[:0]
			q[i].keys = 0
		}
		sc.chunksTo[d] = q[:0]
	}
	clear(sc.totalTo)
	clear(sc.outs)
	for i := range sc.ins {
		sc.ins[i] = inStream[K]{bounds: sc.ins[i].bounds[:0]}
	}
	return sc.chunksTo, sc.totalTo, sc.outs, sc.ins
}

// Release drops the Scratch's references to the last sort's key data so
// a parked engine does not pin that input between calls; the arrays
// themselves stay allocated.
//
// It must only be called after EVERY rank of the exchange has returned
// (the engine calls it once the worker world joins): the outgoing chunk
// queues were sent to peers by reference, and a rank legitimately
// returns while its final chunks still sit unprocessed in a receiver's
// mailbox — clearing them any earlier would nil out views the receiver
// is about to merge.
func (sc *Scratch[K]) Release() {
	if sc.streamer != nil {
		sc.streamer.Reset()
	}
	for d := range sc.chunksTo {
		q := sc.chunksTo[d]
		for i := range q {
			clear(q[i].runs)
		}
	}
}

// outStream tracks one destination of the sender half.
type outStream struct {
	next     int // next chunk index to send
	credits  int // flow-control window remaining
	lastSent bool
}

// inStream tracks one source of the receiver half. Under a memory
// budget a stream can be diverted: once admitting another chunk would
// exceed the budget, the rest of the stream is written to a compressed
// run file as it arrives (with credits granted immediately — disk is
// the window) and read back frame-at-a-time through tail once the
// sender closes the stream.
type inStream[K any] struct {
	seen     bool                // first data/closure message observed (expect accounted)
	closed   bool                // sender sent its last chunk
	diverted bool                // remainder of the stream goes to disk
	admitted int64               // cumulative keys appended to the merge tree
	released int64               // keys whose budget charge has been returned
	charged  int64               // bytes currently charged against the budget
	bounds   []int64             // admitted counts at un-acked chunk ends
	w        *spill.Writer[K]    // open spill writer while diverted
	tail     *spill.RunReader[K] // read-back of the diverted remainder
}

// ExchangeStream routes runs[b] (this rank's keys for bucket b) to
// owner(b) like Exchange, but pipelines the data plane: each
// destination's payload is split into ChunkKeys-sized chunks sent
// interleaved across destinations, and received chunks feed an
// incremental k-way merge (merge.LoserTree) that emits this rank's
// sorted partition while the tail of the exchange is still in flight.
// It returns the merged partition directly.
//
// The output is rank-identical to merge.KWay over Exchange's result:
// each sender's chunks arrive in bucket-major order, so per-sender
// streams are sorted, and duplicate keys — which always land in the same
// bucket on every sender — tie-break by sender rank in both paths.
//
// Flow control: a sender may have at most Window un-acknowledged chunks
// per destination; the receiver grants a credit only after a chunk has
// fully passed through the merge. That bounds per-rank in-flight data
// (transport-buffered plus admitted-but-unmerged) by
// (p-1)·Window·ChunkKeys keys, the streaming path's memory budget.
// Credits share the data tag, so a rank out of local work can park in
// RecvAny and wake on whichever protocol event arrives first.
//
// Tag hygiene: a rank may return while late credit grants addressed to
// it are still queued (ranks do not wait to be acked for their final
// chunks), so the tag must not be reused for another protocol on the
// same endpoint — give every exchange its own tag, as the sort
// pipelines' per-phase tag layout already does.
//
// code, when non-nil, must be an order-preserving uint64 extractor for
// cmp; the incremental merge then runs on a code-keyed tree (raw integer
// compares) instead of comparator calls. When K is the code-point type
// itself the chunks alias straight into the code tree — codes travel
// through the exchange and are never re-encoded.
func ExchangeStream[K any](e comm.StreamEndpoint, tag comm.Tag, runs [][]K, owner func(int) int, cmp func(K, K) int, code func(K) uint64, opt StreamOptions, sc *Scratch[K]) (out []K, st StreamStats, err error) {
	comm.RegisterWire[streamMsg[K]]() // wire transports decode by registered type
	opt = opt.withDefaults()
	p := e.Size()
	me := e.Rank()
	keySize := comm.SizeOf[K]()
	sp := opt.Spill

	// Route each bucket run to its destination's chunk queue. Chunks are
	// zero-copy run views batched in bucket order: consecutive small
	// runs share one chunk up to ChunkKeys keys (so over-partitioned
	// configurations keep the materializing path's message count), and
	// a run larger than ChunkKeys spans several chunks. With a Scratch
	// the queues, flow-control state and merge tree are reused.
	var (
		chunksTo [][]chunk[K]
		totalTo  []int64
		outs     []outStream
		ins      []inStream[K]
	)
	if sc != nil {
		chunksTo, totalTo, outs, ins = sc.routing(p)
	} else {
		chunksTo = make([][]chunk[K], p)
		totalTo = make([]int64, p)
		outs = make([]outStream, p)
		ins = make([]inStream[K], p)
	}
	// On any error, release the spill state an interrupted exchange left
	// open: in-progress divert writers (aborted, file deleted) and tail
	// readers (closed, file deleted). A clean exit has already nil'd all
	// of these.
	defer func() {
		if err == nil {
			return
		}
		for i := range ins {
			if ins[i].w != nil {
				ins[i].w.Abort()
				ins[i].w = nil
			}
			if ins[i].tail != nil {
				ins[i].tail.Close()
				ins[i].tail = nil
			}
		}
	}()
	push := func(dst int, view []K) {
		q := chunksTo[dst]
		if n := len(q); n > 0 && q[n-1].keys+len(view) <= opt.ChunkKeys {
			q[n-1].runs = append(q[n-1].runs, view)
			q[n-1].keys += len(view)
		} else if n < cap(q) {
			// Resurrect a slot kept by the Scratch from a previous sort:
			// its runs array (cleared by routing) is the buffer being
			// reused.
			q = q[:n+1]
			q[n].runs = append(q[n].runs[:0], view)
			q[n].keys = len(view)
		} else {
			q = append(q, chunk[K]{runs: [][]K{view}, keys: len(view)})
		}
		chunksTo[dst] = q
	}
	for b, run := range runs {
		dst := owner(b)
		if dst < 0 || dst >= p {
			return nil, StreamStats{}, fmt.Errorf("exchange: owner(%d) = %d outside world size %d", b, dst, p)
		}
		totalTo[dst] += int64(len(run))
		for len(run) > 0 {
			c := min(opt.ChunkKeys, len(run))
			push(dst, run[:c])
			run = run[c:]
		}
	}

	// One merge stream per sender, admitted in rank order so run indices
	// — and with them duplicate-key tie-breaks — are deterministic. Own
	// data feeds its stream directly and closes it.
	var lt merge.Streamer[K]
	if sc != nil {
		lt = sc.streamerFor(cmp, code, opt.Tie)
	} else {
		lt = merge.NewStreamerTie(cmp, code, opt.Tie)
	}
	for r := 0; r < p; r++ {
		lt.AddRun(nil)
	}
	for _, c := range chunksTo[me] {
		for _, view := range c.runs {
			lt.Append(me, view)
		}
	}
	lt.CloseRun(me)

	out = make([]K, 0, totalTo[me])
	if p == 1 {
		t0 := time.Now()
		for {
			k, ok := lt.NextReady()
			if !ok {
				break
			}
			out = append(out, k)
		}
		st.MergeTail = time.Since(t0)
		return out, st, nil
	}

	for d := range outs {
		outs[d].credits = opt.Window
	}
	sendsPending := p - 1
	openStreams := p - 1
	openTails := 0        // diverted streams still replaying from disk
	expect := totalTo[me] // known final output size so far (capacity hint)
	admitted := int64(0)  // keys admitted across remote streams

	// handle folds one incoming protocol message into local state.
	handle := func(m comm.Message) error {
		sm, ok := m.Payload.(streamMsg[K])
		if !ok {
			return fmt.Errorf("exchange: stream payload type %T from rank %d", m.Payload, m.Src)
		}
		if sm.credit > 0 {
			outs[m.Src].credits += int(sm.credit)
			return nil
		}
		in := &ins[m.Src]
		if in.closed {
			return fmt.Errorf("exchange: chunk from rank %d after its last chunk", m.Src)
		}
		if !in.seen && sm.total > 0 {
			// First message of the stream: note the sender's whole
			// contribution so drain can size the output ahead of need.
			expect += sm.total
		}
		in.seen = true
		if sm.keys > 0 {
			chunkBytes := int64(sm.keys) * keySize
			if sp != nil && !in.diverted && sp.WouldExceed(chunkBytes) {
				// Budget exhausted: divert the rest of this stream to a
				// compressed run file. The divert is permanent so the
				// on-disk remainder stays contiguous and in order.
				w, werr := spill.NewWriter[K](sp, sp.FrameKeys(keySize, p))
				if werr != nil {
					return werr
				}
				in.w = w
				in.diverted = true
			}
			if in.diverted {
				for _, view := range sm.runs {
					if werr := in.w.WriteKeys(view); werr != nil {
						return werr
					}
				}
				// The chunk never occupies the merge tree, so its credit
				// comes back as soon as it is on disk — the run file is
				// the window. A last chunk needs no credit at all.
				if !sm.last {
					if serr := e.Send(m.Src, tag, streamMsg[K]{credit: 1}, MsgHeaderBytes); serr != nil {
						return fmt.Errorf("exchange: stream credit: %w", serr)
					}
				}
			} else {
				if sp != nil {
					sp.Acquire(chunkBytes)
					in.charged += chunkBytes
				}
				for _, view := range sm.runs {
					lt.Append(m.Src, view)
				}
				in.admitted += int64(sm.keys)
				in.bounds = append(in.bounds, in.admitted)
				admitted += int64(sm.keys)
				// Remote keys emitted so far = total emitted - own-stream
				// emissions, so buffered = admitted - that difference.
				buffered := (admitted - (int64(len(out)) - lt.Consumed(me))) * keySize
				if buffered > st.PeakInFlight {
					st.PeakInFlight = buffered
				}
			}
		}
		if sm.last {
			in.closed = true
			in.bounds = nil // the sender needs no further credits
			openStreams--
			if in.diverted {
				// The stream's merge run stays open: its remainder now
				// replays from the run file, refilled frame-at-a-time by
				// drain as the tree consumes it.
				run, ferr := in.w.Finish()
				in.w = nil
				if ferr != nil {
					return ferr
				}
				rd, rerr := run.Reader(true)
				if rerr != nil {
					run.Remove()
					return rerr
				}
				in.tail = rd
				openTails++
			} else {
				lt.CloseRun(m.Src)
			}
		}
		return nil
	}

	// trySend pushes at most one chunk to every destination with credit,
	// staggered like the materializing path so chunks interleave across
	// destinations instead of draining one peer at a time.
	trySend := func() (bool, error) {
		progress := false
		for i := 1; i < p; i++ {
			dst := (me + i) % p
			o := &outs[dst]
			if o.lastSent || o.credits == 0 {
				continue
			}
			q := chunksTo[dst]
			var msg streamMsg[K]
			bytes := int64(MsgHeaderBytes)
			if o.next < len(q) {
				c := q[o.next]
				o.next++
				msg = streamMsg[K]{runs: c.runs, keys: c.keys, total: totalTo[dst], last: o.next == len(q)}
				bytes += int64(len(c.runs))*RunHeaderBytes + int64(c.keys)*keySize
			} else {
				// Nothing for this destination: a single empty closure
				// message, which still pays the per-message overhead.
				msg = streamMsg[K]{last: true}
			}
			if err := e.Send(dst, tag, msg, bytes); err != nil {
				return false, fmt.Errorf("exchange: stream send: %w", err)
			}
			o.credits--
			st.ChunksSent++
			if msg.last {
				o.lastSent = true
				sendsPending--
			}
			progress = true
		}
		return progress, nil
	}

	// refillTails feeds every starved disk tail its next frame (the tree
	// has consumed everything the tail's stream appended), closing the
	// stream's merge run at the final marker — which also deletes the
	// run file, the steady-state cleanup.
	refillTails := func() (bool, error) {
		did := false
		for i := range ins {
			in := &ins[i]
			if in.tail == nil || lt.Consumed(i) < in.admitted {
				continue
			}
			keys, rerr := in.tail.NextChunk()
			if rerr != nil {
				return did, rerr
			}
			if keys == nil {
				in.tail = nil
				lt.CloseRun(i)
				openTails--
			} else {
				b := int64(len(keys)) * keySize
				sp.Acquire(b)
				in.charged += b
				lt.Append(i, keys)
				in.admitted += int64(len(keys))
				admitted += int64(len(keys))
			}
			did = true
		}
		return did, nil
	}

	// drain emits every safely mergeable key, then grants credits for
	// chunks that have fully passed through the merge of still-open
	// streams (a closed stream's sender has nothing left to send) and
	// returns the budget of fully consumed chunks.
	drain := func() (bool, error) {
		refilled := false
		if openTails > 0 {
			var rerr error
			if refilled, rerr = refillTails(); rerr != nil {
				return false, rerr
			}
		}
		k, ok := lt.NextReady()
		if !ok {
			return refilled, nil
		}
		t0 := time.Now()
		if int64(cap(out)) < expect {
			out = slices.Grow(out, int(expect)-len(out))
		}
		out = append(out, k)
		if openStreams > 0 || openTails > 0 {
			for {
				k, ok = lt.NextReady()
				if !ok {
					break
				}
				out = append(out, k)
			}
			st.Overlap += time.Since(t0)
		} else if opt.Pool.Workers() > 1 {
			// Every stream is closed and a worker pool is available:
			// take the unconsumed tail out of the tree in bulk and merge
			// it one sub-range per core. Byte-identical to the bare
			// merge loop below (see merge.ParMerge).
			elems, cs := lt.Rest()
			switch {
			case cs != nil && opt.Tie:
				out = merge.ParMergeCodedTie(out, elems, cs, cmp, opt.Pool)
			case cs != nil:
				out = merge.ParMergeCoded(out, elems, cs, opt.Pool)
			default:
				out = merge.ParMerge(out, elems, cmp, opt.Pool)
			}
			st.MergeTail += time.Since(t0)
		} else {
			// Every stream is closed: starvation is impossible and the
			// guarded NextReady is equivalent to the bare merge loop.
			for {
				k, ok = lt.Next()
				if !ok {
					break
				}
				out = append(out, k)
			}
			st.MergeTail += time.Since(t0)
		}
		if sp != nil {
			for i := range ins {
				in := &ins[i]
				if c := lt.Consumed(i); c > in.released {
					if b := min((c-in.released)*keySize, in.charged); b > 0 {
						sp.Release(b)
						in.charged -= b
					}
					in.released = c
				}
			}
		}
		for i := 1; i < p; i++ {
			src := (me - i + p) % p
			in := &ins[src]
			var grant int32
			for len(in.bounds) > 0 && lt.Consumed(src) >= in.bounds[0] {
				in.bounds = in.bounds[1:]
				grant++
			}
			if grant > 0 {
				if err := e.Send(src, tag, streamMsg[K]{credit: grant}, MsgHeaderBytes); err != nil {
					return false, fmt.Errorf("exchange: stream credit: %w", err)
				}
			}
		}
		return true, nil
	}

	for {
		progress, err := trySend()
		if err != nil {
			return nil, st, err
		}
		for {
			m, ok, err := e.TryRecv(comm.AnySource, tag)
			if err != nil {
				return nil, st, fmt.Errorf("exchange: stream recv: %w", err)
			}
			if !ok {
				break
			}
			if err := handle(m); err != nil {
				return nil, st, err
			}
			progress = true
		}
		emitted, err := drain()
		if err != nil {
			return nil, st, err
		}
		progress = progress || emitted
		if sendsPending == 0 && openStreams == 0 && openTails == 0 && lt.Exhausted() {
			return out, st, nil
		}
		if !progress {
			// Out of local work: park until the next protocol event —
			// a chunk for a starved stream or a credit for a stalled
			// send, whichever peer delivers first. Liveness: a rank
			// blocks only while a peer still owes it a message, and
			// every owed message is eventually sendable because credits
			// are granted whenever merges progress.
			m, err := e.RecvAny(tag)
			if err != nil {
				return nil, st, fmt.Errorf("exchange: stream recv: %w", err)
			}
			if err := handle(m); err != nil {
				return nil, st, err
			}
		}
	}
}

// ExchangeMerge is the data-movement dispatcher for the sort pipelines:
// it routes runs to their owners and returns this rank's fully merged
// partition, using the materializing Exchange + merge path when
// opt.ChunkKeys == 0 (the conformance oracle) or the streaming pipeline
// otherwise. code, when non-nil, selects the code-keyed merge on either
// path (see ExchangeStream). sc, when non-nil, reuses that rank-private
// Scratch across calls (engine reuse; currently exercised by the
// streaming path). exchangeTime and mergeTime keep phase stats
// comparable across paths: under streaming, merge work hidden inside the
// exchange is charged to the exchange phase and only the unhidable tail
// (StreamStats.MergeTail) to the merge phase.
func ExchangeMerge[K any](e comm.StreamEndpoint, tag comm.Tag, runs [][]K, owner func(int) int, cmp func(K, K) int, code func(K) uint64, opt StreamOptions, sc *Scratch[K]) (out []K, exchangeTime, mergeTime time.Duration, st StreamStats, err error) {
	t0 := time.Now()
	if opt.ChunkKeys == 0 {
		recv, err := Exchange(e, tag, runs, owner)
		if err != nil {
			return nil, 0, 0, StreamStats{}, err
		}
		exchangeTime = time.Since(t0)
		t1 := time.Now()
		if sp := opt.Spill; sp != nil {
			var total int64
			for _, r := range recv {
				total += int64(len(r)) * comm.SizeOf[K]()
			}
			if total > sp.Budget() {
				out, err := spillMergeRecv(recv, cmp, code, opt)
				if err != nil {
					return nil, 0, 0, StreamStats{}, err
				}
				return out, exchangeTime, time.Since(t1), StreamStats{}, nil
			}
		}
		var tie func(K, K) int
		if opt.Tie && code != nil {
			tie = cmp
		}
		switch {
		case opt.Pool.Workers() > 1 && code != nil:
			out = merge.ParMergeByCodeTie(nil, recv, code, tie, opt.Pool)
		case opt.Pool.Workers() > 1:
			out = merge.ParMerge(nil, recv, cmp, opt.Pool)
		case code != nil:
			out = merge.KWayByCodeTie(recv, code, tie)
		default:
			out = merge.KWay(recv, cmp)
		}
		return out, exchangeTime, time.Since(t1), StreamStats{}, nil
	}
	out, st, err = ExchangeStream(e, tag, runs, owner, cmp, code, opt, sc)
	if err != nil {
		return nil, 0, 0, st, err
	}
	total := time.Since(t0)
	return out, total - st.MergeTail, st.MergeTail, st, nil
}

// spillMergeRecv is the materializing path's out-of-core merge: the
// received runs together exceed the memory budget, so each run is
// spilled to its own compressed run file (in rank order, preserving the
// duplicate-key tie-break) and the merge streams them back one frame
// per run. The received buffers are dropped as they are spilled; on the
// wire transports this frees them, on the shared-memory transports the
// views just stop being referenced (a simulated out-of-core run).
// Output is identical to the in-memory k-way merge.
func spillMergeRecv[K any](recv [][]K, cmp func(K, K) int, code func(K) uint64, opt StreamOptions) ([]K, error) {
	sp := opt.Spill
	keySize := comm.SizeOf[K]()
	frameKeys := sp.FrameKeys(keySize, len(recv))
	srcs := make([]merge.Source[K], 0, len(recv))
	defer func() {
		// No-op after a clean merge; on error paths this deletes whatever
		// run files are still open. Close is idempotent.
		for _, s := range srcs {
			s.(*spill.RunReader[K]).Close()
		}
	}()
	total := 0
	for i, r := range recv {
		total += len(r)
		w, err := spill.NewWriter[K](sp, frameKeys)
		if err != nil {
			return nil, err
		}
		if err := w.WriteKeys(r); err != nil {
			w.Abort()
			return nil, err
		}
		run, err := w.Finish()
		if err != nil {
			return nil, err
		}
		recv[i] = nil
		rd, err := run.Reader(true)
		if err != nil {
			run.Remove()
			return nil, err
		}
		srcs = append(srcs, rd)
	}
	st := merge.NewStreamerTie(cmp, code, opt.Tie && code != nil)
	return merge.FromSources(st, srcs, sp, make([]K, 0, total), keySize)
}
