package spill

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"hssort/internal/codes"
)

// keysFromBytes derives a code sequence from raw fuzz bytes. The codec
// must round-trip ANY sequence (delta encoding is wraparound-total), so
// no sorting or deduping is applied.
func keysFromBytes(data []byte) []codes.Code {
	n := len(data) / 8
	keys := make([]codes.Code, 0, n+1)
	for i := 0; i < n; i++ {
		keys = append(keys, codes.Code(binary.LittleEndian.Uint64(data[i*8:])))
	}
	if rem := data[n*8:]; len(rem) > 0 {
		var tail [8]byte
		copy(tail[:], rem)
		keys = append(keys, codes.Code(binary.LittleEndian.Uint64(tail[:])))
	}
	return keys
}

func writeRun(t interface {
	Fatalf(string, ...any)
	TempDir() string
}, keys []codes.Code, frameKeys int) (*Manager, *Run[codes.Code]) {
	m, err := NewManager(1<<30, t.TempDir(), 0)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	w, err := NewWriter[codes.Code](m, frameKeys)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := w.WriteKeys(keys); err != nil {
		t.Fatalf("WriteKeys: %v", err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return m, run
}

// FuzzSpillRunRoundTrip checks that any key sequence round-trips
// bit-exact and in order through the run-file codec, at arbitrary frame
// sizes.
func FuzzSpillRunRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint16(2))
	f.Add(append(make([]byte, 64), 0xff, 0x7f), uint16(3))
	sorted := make([]byte, 0, 80)
	for i := 0; i < 10; i++ {
		sorted = binary.LittleEndian.AppendUint64(sorted, uint64(i*1000))
	}
	f.Add(sorted, uint16(4))
	f.Fuzz(func(t *testing.T, data []byte, frame uint16) {
		keys := keysFromBytes(data)
		m, run := writeRun(t, keys, int(frame)%512+1)
		defer m.Close()
		rd, err := run.Reader(false)
		if err != nil {
			t.Fatalf("Reader: %v", err)
		}
		defer rd.Close()
		got := make([]codes.Code, 0, len(keys))
		for {
			chunk, err := rd.NextChunk()
			if err != nil {
				t.Fatalf("NextChunk: %v", err)
			}
			if chunk == nil {
				break
			}
			got = append(got, chunk...)
		}
		if !slices.Equal(got, keys) {
			t.Fatalf("round trip mismatch: wrote %d keys, read %d", len(keys), len(got))
		}
	})
}

// FuzzSpillRunCorrupt mutates or truncates a valid run file and checks
// the reader either rejects it with a *spill.Error wrapping ErrCorrupt
// or decodes data exactly equal to the original — never garbage keys.
// (Equality is legitimate: mutations past the final marker, or
// truncation that removes only trailing bytes, leave the decoded stream
// intact.)
func FuzzSpillRunCorrupt(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint32(9), byte(0x80), false)
	f.Add(make([]byte, 256), uint32(30), byte(1), true)
	f.Add([]byte{0xff}, uint32(0), byte(0xff), false)
	f.Fuzz(func(t *testing.T, data []byte, pos uint32, xor byte, truncate bool) {
		keys := keysFromBytes(data)
		m, run := writeRun(t, keys, 64)
		defer m.Close()
		raw, err := os.ReadFile(run.Path())
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		if truncate {
			raw = raw[:int(pos)%(len(raw)+1)]
		} else {
			raw = slices.Clone(raw)
			raw[int(pos)%len(raw)] ^= xor
		}
		path := filepath.Join(t.TempDir(), "mutated.spill")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		var got []codes.Code
		rd, err := OpenRun[codes.Code](m, path, false)
		if err == nil {
			defer rd.Close()
			for {
				var chunk []codes.Code
				chunk, err = rd.NextChunk()
				if err != nil || chunk == nil {
					break
				}
				got = append(got, chunk...)
			}
		}
		if err == nil {
			if !slices.Equal(got, keys) {
				t.Fatalf("mutated run decoded to %d keys without error (want %d identical)", len(got), len(keys))
			}
			return
		}
		var se *Error
		if !errors.As(err, &se) {
			t.Fatalf("error is %T (%v), want *spill.Error", err, err)
		}
		if !errors.Is(err, ErrCorrupt) && se.Err == nil {
			t.Fatalf("corrupt run error carries no cause: %v", err)
		}
	})
}
