package exchange

import (
	"cmp"
	"context"
	"errors"
	"io"
	"runtime"
	"slices"
	"testing"
	"time"

	"hssort/internal/comm"
	"hssort/internal/par"
)

// TestCancelMidExchange cancels the context while every rank is inside
// the data-exchange phase — rank 1 holds its peers (they are blocked in
// the exchange's receives, which without the cancel would wait forever
// for rank 1's data) and then cancels instead of sending — on both
// transports and both exchange planes. Every rank must unblock with an
// error satisfying errors.Is(err, context.Canceled), and the pool's
// workers must exit on Close.
func TestCancelMidExchange(t *testing.T) {
	const p, perRank = 4, 2000
	transports := []struct {
		name string
		mk   func(p int) comm.Transport
	}{
		{"sim", func(p int) comm.Transport { return comm.NewSimTransport(p) }},
		{"inproc", func(p int) comm.Transport { return comm.NewInprocTransport(p) }},
		{"tcp", func(p int) comm.Transport {
			tr, err := comm.NewTCPLoopback(p)
			if err != nil {
				panic(err)
			}
			return tr
		}},
	}
	for _, tr := range transports {
		for _, chunkKeys := range []int{0, 256} {
			name := tr.name + "/materializing"
			if chunkKeys > 0 {
				name = tr.name + "/stream"
			}
			t.Run(name, func(t *testing.T) {
				before := runtime.NumGoroutine()
				icmp := cmp.Compare[int64]
				shards := make([][]int64, p)
				v := int64(1)
				for r := range shards {
					for i := 0; i < perRank; i++ {
						v = v*6364136223846793005 + 1442695040888963407
						shards[r] = append(shards[r], v>>16)
					}
					slices.Sort(shards[r])
				}
				splitters := []int64{-1 << 45, 0, 1 << 45}
				owner := func(b int) int { return b }

				pool := comm.NewPool(p, comm.WithTransport(tr.mk(p)), comm.WithTimeout(30*time.Second))
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				rankErrs := make([]error, p)
				err := pool.Run(ctx, func(c *comm.Comm) error {
					runs := Partition(shards[c.Rank()], splitters, icmp)
					if c.Rank() == 1 {
						// Let the peers enter the exchange and block on
						// receives that only rank 1 could satisfy, then
						// cancel: the abort is the only thing that can
						// unblock them — no timing flake possible. Wait
						// for the abort to latch (context.AfterFunc runs
						// asynchronously) so rank 1 cannot race the
						// exchange to completion first.
						time.Sleep(10 * time.Millisecond)
						cancel()
						for c.World().Transport().Err() == nil {
							time.Sleep(100 * time.Microsecond)
						}
					}
					_, _, _, _, err := ExchangeMerge(c, 1, runs, owner, icmp, nil,
						StreamOptions{ChunkKeys: chunkKeys, Pool: par.New(3)}, nil)
					rankErrs[c.Rank()] = err
					return err
				})
				if err == nil {
					t.Fatal("cancelled exchange returned nil")
				}
				for r, re := range rankErrs {
					if r == 1 && re == nil {
						// Rank 1 itself may slip through if its own sends
						// completed before the abort latched; the other
						// ranks cannot.
						continue
					}
					if !errors.Is(re, context.Canceled) {
						t.Errorf("rank %d error = %v, want context.Canceled", r, re)
					}
				}

				// The pool serves a clean exchange afterwards.
				outs := make([][]int64, p)
				if err := pool.Run(context.Background(), func(c *comm.Comm) error {
					runs := Partition(slices.Clone(shards[c.Rank()]), splitters, icmp)
					out, _, _, _, err := ExchangeMerge(c, 1, runs, owner, icmp, nil,
						StreamOptions{ChunkKeys: chunkKeys, Pool: par.New(3)}, nil)
					outs[c.Rank()] = out
					return err
				}); err != nil {
					t.Fatalf("exchange after cancellation: %v", err)
				}
				for r, o := range outs {
					if !slices.IsSorted(o) {
						t.Errorf("rank %d output not sorted after recovery", r)
					}
				}

				pool.Close()
				if cl, ok := pool.Transport().(io.Closer); ok {
					cl.Close() // tcp: release sockets + pump goroutines
				}
				deadline := time.Now().Add(2 * time.Second)
				for runtime.NumGoroutine() > before {
					if time.Now().After(deadline) {
						t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), before)
					}
					time.Sleep(5 * time.Millisecond)
				}
			})
		}
	}
}
